"""Algorithm 1: end-to-end suspicious-group detection on a TPIIN.

``detect`` orchestrates the three-step approach of Section 4.3:

1. segment the TPIIN into subTPIINs (divide and conquer);
2. per subTPIIN, build the patterns tree and component pattern base
   (Algorithm 2);
3. match component patterns sharing an antecedent into suspicious
   groups, and add the intra-SCS trade groups.

Two engines implement identical semantics:

* ``"faithful"`` — the paper's algorithm literally: materializes the
  pattern base and matches it (this module);
* ``"fast"`` — an optimized equivalent using a packed root-ancestor
  index and per-root path caches (:mod:`repro.mining.fast`), used for
  the full-scale Table 1 sweep.

Their outputs are cross-validated by property tests.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import Node
from repro.mining.groups import GroupKind, SuspiciousGroup
from repro.mining.matching import match_component_patterns
from repro.mining.options import DetectOptions, Engine, TraceSpec
from repro.mining.patterns import build_patterns_tree
from repro.mining.scs_groups import scs_suspicious_groups
from repro.mining.segmentation import segment
from repro.model.colors import EColor
from repro.obs.profile import SUBTPIIN_SPAN
from repro.obs.registry import get_registry
from repro.obs.tracing import SpanRecord, TracerLike

__all__ = [
    "DetectionResult",
    "IAT_DETECTOR_NAME",
    "IAT_DETECTOR_VERSION",
    "SubTPIINResult",
    "detect",
]

#: Canonical identity of the paper's IAT group miner in the detector
#: registry (:mod:`repro.detectors`).  Declared here — not in the
#: detectors package — because every engine-produced
#: :class:`DetectionResult` carries it, and the mining layer sits below
#: the plugin framework in the declared architecture.
IAT_DETECTOR_NAME = "iat-groups"
IAT_DETECTOR_VERSION = "1.0.0"

#: Bucket bounds (milliseconds) for the detect() wall-time histogram;
#: densest-720 runs land mid-range, toy fixtures in the first bucket.
_DETECT_BUCKETS_MS = (1.0, 5.0, 25.0, 100.0, 250.0, 1000.0, 5000.0, 30000.0)


@dataclass(slots=True)
class SubTPIINResult:
    """Per-subTPIIN mining outcome (the paper's ``susGroup(i)`` content)."""

    index: int
    node_count: int
    trading_arc_count: int
    pattern_trail_count: int
    # A plain list for the eager engines, a lazily-materialized
    # :class:`~repro.mining.compact.LazyGroups` for the parallel engine.
    groups: Sequence[SuspiciousGroup] = field(default_factory=list)

    @property
    def suspicious_arcs(self) -> set[tuple[Node, Node]]:
        return {g.trading_arc for g in self.groups}


@dataclass(slots=True)
class DetectionResult:
    """Aggregated outcome of Algorithm 1 over a whole TPIIN.

    The fast engine's count-only mode fills the ``*_override`` fields
    instead of materializing every group object; the count properties
    below fall back to them when ``groups`` is empty.
    """

    # Eager engines fill a plain list; the parallel engine supplies a
    # sized, lazily-materialized sequence (``len`` is O(1) either way).
    groups: Sequence[SuspiciousGroup]
    total_trading_arcs: int
    cross_component_trades: int
    subtpiin_count: int
    engine: str
    pattern_trail_count: int | None = None
    sub_results: list[SubTPIINResult] = field(default_factory=list)
    # True when a max_trails cap silently stopped some pattern search:
    # every count in this result is then a lower bound, not a total.
    truncated: bool = False
    simple_count_override: int | None = None
    complex_count_override: int | None = None
    kind_counts_override: Counter[GroupKind] | None = None
    suspicious_arcs_override: set[tuple[Node, Node]] | None = None
    # Root span of the traced run (None unless detect(..., trace=...)
    # collected one); excluded from equality-style comparisons by tests.
    trace: SpanRecord | None = None
    # Which detector produced this result.  Every engine of this module
    # implements the paper's IAT miner, so the defaults apply; the
    # plugin framework (repro.detectors) stamps ports of other miners.
    detector: str = IAT_DETECTOR_NAME
    detector_version: str = IAT_DETECTOR_VERSION
    # FindingsReport of the extra portfolio detectors requested via
    # DetectOptions.detectors.  Typed as object because the mining
    # layer sits below repro.detectors; narrow at the call site.
    findings: object | None = None

    # ------------------------------------------------------------------
    @property
    def suspicious_trading_arcs(self) -> set[tuple[Node, Node]]:
        """Distinct trading arcs behind at least one group.

        Intra-SCS trades are reported in their original (pre-contraction)
        company ids, exactly as the fusion pipeline recorded them.
        """
        if self.suspicious_arcs_override is not None:
            return self.suspicious_arcs_override
        return {g.trading_arc for g in self.groups}

    @property
    def simple_group_count(self) -> int:
        """Simple groups (Definition 3), including circle and SCS groups."""
        if self.simple_count_override is not None:
            return self.simple_count_override
        return sum(1 for g in self.groups if g.is_simple)

    @property
    def complex_group_count(self) -> int:
        if self.complex_count_override is not None:
            return self.complex_count_override
        return sum(1 for g in self.groups if g.is_complex)

    @property
    def group_count(self) -> int:
        """Total groups, without classifying them.

        Uses the count overrides when an engine supplied them (the
        fast engine's count-only mode), else ``len(groups)`` — never a
        simple/complex classification pass, which costs two full
        interior-set scans and would materialize lazy group sequences.
        """
        if self.simple_count_override is not None and self.complex_count_override is not None:
            return self.simple_count_override + self.complex_count_override
        return len(self.groups)

    @property
    def suspicious_arc_count(self) -> int:
        return len(self.suspicious_trading_arcs)

    @property
    def suspicious_arc_share(self) -> float:
        """Suspicious share of all trading relationships (Table 1, last col)."""
        if self.total_trading_arcs == 0:
            return 0.0
        return self.suspicious_arc_count / self.total_trading_arcs

    def kind_counts(self) -> Counter[GroupKind]:
        if self.kind_counts_override is not None:
            return self.kind_counts_override
        return Counter(g.kind for g in self.groups)

    def groups_for_arc(self, arc: tuple[Node, Node]) -> list[SuspiciousGroup]:
        """Every group certifying one trading arc (the proof chains)."""
        return [g for g in self.groups if g.trading_arc == arc]

    def summary(self) -> str:
        kinds = self.kind_counts()
        text = (
            f"detector={self.detector} v{self.detector_version} "
            f"engine={self.engine} subTPIINs={self.subtpiin_count} "
            f"groups={self.group_count} "
            f"(complex={self.complex_group_count}, simple={self.simple_group_count}; "
            f"matched={kinds.get(GroupKind.MATCHED, 0)}, "
            f"circle={kinds.get(GroupKind.CIRCLE, 0)}, "
            f"scs={kinds.get(GroupKind.SCS, 0)}) "
            f"suspicious_arcs={self.suspicious_arc_count}/{self.total_trading_arcs} "
            f"({100.0 * self.suspicious_arc_share:.4f}%)"
        )
        if self.truncated:
            text += " [truncated: max_trails cap hit; counts are lower bounds]"
        return text

    def render_sub_report(self, *, max_rows: int = 20) -> str:
        """Per-subTPIIN table (faithful/parallel engines only).

        Shows the divide-and-conquer at work: each MWCS's size, pattern
        base, groups found and suspicious arcs, largest first.
        """
        if not self.sub_results:
            return "no per-subTPIIN data (engine did not segment)"
        # analysis imports mining at module scope; stay function-local.
        from repro.analysis.reporting import render_table  # reprolint: disable=R010

        ranked = sorted(self.sub_results, key=lambda s: -len(s.groups))
        rows = [
            [
                sub.index,
                sub.node_count,
                sub.trading_arc_count,
                sub.pattern_trail_count,
                len(sub.groups),
                len(sub.suspicious_arcs),
            ]
            for sub in ranked[:max_rows]
        ]
        table = render_table(
            ["subTPIIN", "nodes", "trades", "trails", "groups", "sus arcs"],
            rows,
        )
        if len(ranked) > max_rows:
            table += f"\n... and {len(ranked) - max_rows} more subTPIINs"
        return table

    # ------------------------------------------------------------------
    def write_files(self, directory: str | Path) -> list[Path]:
        """Write the paper's ``susGroup(i)`` / ``susTrade(i)`` output files.

        One pair of files per subTPIIN that produced any group (faithful
        engine), or a single aggregated pair (fast engine).  Returns the
        written paths.
        """
        # io.results_io type-imports DetectionResult; stay function-local.
        from repro.io.results_io import write_sus_files  # reprolint: disable=R010

        return write_sus_files(self, Path(directory))


def detect(
    tpiin: TPIIN,
    options: DetectOptions | None = None,
    *,
    engine: str | Engine | None = None,
    max_trails_per_subtpiin: int | None = None,
    skip_trivial_subtpiins: bool | None = None,
    processes: int | None = None,
    collect_groups: bool | None = None,
    trace: TraceSpec | None = None,
    min_pool_work: int | None = None,
    detectors: "str | Sequence[str] | None" = None,
) -> DetectionResult:
    """Detect all suspicious tax evasion groups in ``tpiin``.

    Accepts a :class:`~repro.mining.options.DetectOptions` bag, plain
    keywords, or both — explicit keywords override the corresponding
    option field (``None`` means "not supplied").

    Parameters
    ----------
    options:
        Consolidated knobs; defaults to ``DetectOptions()`` (faithful
        engine, untraced).
    engine:
        :class:`~repro.mining.options.Engine` or its string name.
        ``"faithful"`` runs the paper's Algorithm 1/2 literally;
        ``"fast"`` runs the optimized equivalent engine;
        ``"csr"`` runs the faithful pipeline over the frozen
        :class:`~repro.graph.csr.CSRGraph` kernel (same groups, much
        faster; see docs/PERFORMANCE.md);
        ``"parallel"`` fans the CSR kernel out across worker processes;
        ``"incremental"`` streams the trading arcs through
        :class:`~repro.mining.incremental.IncrementalDetector` (useful
        to validate the streaming path against the batch engines).
    max_trails_per_subtpiin:
        Faithful and csr engines only: optional cap on each pattern base
        as a safety valve; a capped run sets ``DetectionResult.truncated``
        and its counts are *lower bounds* (the paper's experiments run
        uncapped, as do ours).
    skip_trivial_subtpiins:
        Skip subTPIINs with no trading arc (pure optimization).
    processes:
        Parallel engine only: worker-process count (defaults to the
        machine's CPU count).
    min_pool_work:
        Parallel engine only: minimum total estimated mining work
        before a worker pool is spawned; smaller jobs (or single-CPU
        machines) mine in-process on the same compact kernels.
    collect_groups:
        Fast and incremental engines only: ``False`` keeps the Table-1
        tallies without materializing every group object.
    trace:
        ``True`` collects a span tree onto ``DetectionResult.trace``;
        a caller-owned :class:`~repro.obs.Tracer` nests the run under
        the caller's open span instead.  Group sets are identical
        either way (property-tested).
    detectors:
        Extra portfolio detectors (names registered in
        :mod:`repro.detectors`, or ``"all"``) to run over the same
        TPIIN after the IAT mining; their merged
        :class:`~repro.detectors.base.FindingsReport` is attached as
        ``DetectionResult.findings``.  The IAT detector itself is never
        re-run — this result *is* its output.
    """
    opts = (options if options is not None else DetectOptions()).with_overrides(
        engine=engine,
        max_trails_per_subtpiin=max_trails_per_subtpiin,
        skip_trivial_subtpiins=skip_trivial_subtpiins,
        processes=processes,
        collect_groups=collect_groups,
        trace=trace,
        min_pool_work=min_pool_work,
        detectors=detectors,
    )
    tracer = opts.resolve_tracer()
    started = time.perf_counter()
    if tracer.enabled:
        span = tracer.span("detect")
        with span:
            span.set(engine=opts.engine.value)
            result = _run_engine(tpiin, opts, tracer)
        result.trace = span.record
    else:
        result = _run_engine(tpiin, opts, tracer)
    _count_run(opts.engine, result, time.perf_counter() - started)
    if opts.detectors:
        result.findings = _run_extra_detectors(tpiin, opts)
    return result


def _run_extra_detectors(tpiin: TPIIN, opts: DetectOptions) -> object | None:
    """Run the non-IAT detectors named by ``opts.detectors``.

    The plugin framework sits above the mining layer, so the imports
    must stay function-local; the IAT detector is excluded because the
    caller's result already is its output.
    """
    from repro.detectors.registry import get_detector_registry  # reprolint: disable=R010
    from repro.detectors.runner import run_detectors  # reprolint: disable=R010

    registry = get_detector_registry()
    extras = [
        name
        for name in registry.resolve(opts.detectors or ())
        if name != IAT_DETECTOR_NAME
    ]
    if not extras:
        return None
    return run_detectors(tpiin, extras, registry=registry, trace=opts.trace)


def _run_engine(tpiin: TPIIN, opts: DetectOptions, tracer: TracerLike) -> DetectionResult:
    # The engine modules import DetectionResult from this module, so
    # their imports must stay function-local to break the cycle.
    if opts.engine is Engine.FAST:
        from repro.mining.fast import _fast_detect  # reprolint: disable=R010

        return _fast_detect(tpiin, collect_groups=opts.collect_groups, tracer=tracer)
    if opts.engine is Engine.CSR:
        from repro.mining.csr_engine import csr_detect  # reprolint: disable=R010

        return csr_detect(
            tpiin,
            max_trails_per_subtpiin=opts.max_trails_per_subtpiin,
            skip_trivial_subtpiins=opts.skip_trivial_subtpiins,
            tracer=tracer,
        )
    if opts.engine is Engine.PARALLEL:
        from repro.mining.parallel import parallel_detect  # reprolint: disable=R010

        return parallel_detect(
            tpiin,
            processes=opts.processes,
            min_pool_work=opts.min_pool_work,
            tracer=tracer,
        )
    if opts.engine is Engine.INCREMENTAL:
        from repro.mining.incremental import (  # reprolint: disable=R010
            IncrementalDetector,
        )

        return IncrementalDetector(
            tpiin, collect_groups=opts.collect_groups, tracer=tracer
        ).result()
    return _detect_faithful(tpiin, opts, tracer)


def _count_run(engine: Engine, result: DetectionResult, elapsed: float) -> None:
    """Flush one run's tallies into the process-wide metrics registry."""
    registry = get_registry()
    registry.counter(
        "repro_detect_runs_total",
        help="Completed detect() runs.",
        engine=engine.value,
    ).inc()
    registry.counter(
        "repro_detect_groups_total",
        help="Suspicious groups found by detect() runs.",
        engine=engine.value,
    ).inc(result.group_count)
    registry.histogram(
        "repro_detect_duration_ms",
        buckets=_DETECT_BUCKETS_MS,
        help="detect() wall time in milliseconds.",
        engine=engine.value,
    ).observe(elapsed * 1e3)


def _detect_faithful(
    tpiin: TPIIN, opts: DetectOptions, tracer: TracerLike
) -> DetectionResult:
    """The paper's Algorithm 1 literally (segment / mine / match)."""
    with tracer.span("segment") as seg_span:
        segmentation = segment(tpiin, skip_trivial=opts.skip_trivial_subtpiins)
        if tracer.enabled:
            seg_span.set(
                subtpiins=len(segmentation.subtpiins),
                components=segmentation.total_components,
                cross_component_trades=len(segmentation.cross_component_trades),
            )
    groups: list[SuspiciousGroup] = []
    sub_results: list[SubTPIINResult] = []
    trail_total = 0
    truncated = False
    for sub in segmentation.subtpiins:
        with tracer.span(SUBTPIIN_SPAN) as sub_span:
            with tracer.span("patterns_tree") as tree_span:
                tree = build_patterns_tree(
                    sub.graph, max_trails=opts.max_trails_per_subtpiin, build_tree=False
                )
                if tracer.enabled:
                    tree_span.set(trails=len(tree.trails), truncated=tree.truncated)
            with tracer.span("match") as match_span:
                sub_groups = match_component_patterns(tree.trails)
                if tracer.enabled:
                    match_span.set(groups=len(sub_groups))
            if tracer.enabled:
                sub_span.set(
                    index=sub.index,
                    nodes=len(sub.nodes),
                    trading_arcs=sub.trading_arc_count,
                    trails=len(tree.trails),
                    groups=len(sub_groups),
                )
        truncated = truncated or tree.truncated
        trail_total += len(tree.trails)
        groups.extend(sub_groups)
        sub_results.append(
            SubTPIINResult(
                index=sub.index,
                node_count=len(sub.nodes),
                trading_arc_count=sub.trading_arc_count,
                pattern_trail_count=len(tree.trails),
                groups=sub_groups,
            )
        )

    with tracer.span("scs_groups") as scs_span:
        scs_groups = scs_suspicious_groups(tpiin)
        if tracer.enabled:
            scs_span.set(groups=len(scs_groups))
    groups.extend(scs_groups)

    total_trading = tpiin.graph.number_of_arcs(EColor.TRADING) + len(
        tpiin.intra_scs_trades
    )
    return DetectionResult(
        groups=groups,
        total_trading_arcs=total_trading,
        cross_component_trades=len(segmentation.cross_component_trades),
        subtpiin_count=segmentation.total_components,
        engine="faithful",
        pattern_trail_count=trail_total,
        sub_results=sub_results,
        truncated=truncated,
    )
