"""Suspicious trades inside contracted investment syndicates.

Section 4.3 closes with the case the main algorithm cannot see: after
SCC contraction, a trading arc between two companies of the same
strongly connected subgraph becomes a self-loop on the syndicate node
and is excluded from the TPIIN.  Such a trade is suspicious *if and only
if it exists*: strong connectivity guarantees an investment trail from
the seller to the buyer, and that trail plus the trading arc form a
(simple) suspicious group.

The fusion pipeline records these arcs in ``TPIIN.intra_scs_trades`` and
keeps the saved subgraphs; this module turns them into groups with an
explicit witness trail.
"""

from __future__ import annotations

from collections import deque

from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import DiGraph, Node
from repro.mining.groups import GroupKind, SuspiciousGroup

__all__ = ["scs_suspicious_groups", "shortest_path_in"]


def shortest_path_in(graph: DiGraph, source: Node, target: Node) -> tuple[Node, ...]:
    """Shortest directed path ``source ~> target`` via BFS.

    Raises :class:`MiningError` when no path exists — inside a strongly
    connected subgraph that would indicate corrupted provenance.
    """
    if source == target:
        return (source,)
    parent: dict[Node, Node] = {}
    queue: deque[Node] = deque([source])
    seen = {source}
    while queue:
        node = queue.popleft()
        for nxt in graph.successors(node):
            if nxt in seen:
                continue
            parent[nxt] = node
            if nxt == target:
                path = [target]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return tuple(path)
            seen.add(nxt)
            queue.append(nxt)
    raise MiningError(f"no path {source!r} ~> {target!r} in saved SCS subgraph")


def scs_suspicious_groups(tpiin: TPIIN) -> list[SuspiciousGroup]:
    """One simple suspicious group per intra-SCS trading arc.

    The group pairs the trading arc ``(c1, c2)`` with the shortest
    investment trail ``c1 ~> c2`` inside the saved subgraph; BFS-shortest
    paths are simple, so the group is simple (Definition 3).
    """
    if not tpiin.intra_scs_trades:
        return []
    member_to_scs: dict[Node, Node] = {}
    for scs_id, subgraph in tpiin.scs_subgraphs.items():
        for member in subgraph.nodes():
            member_to_scs[member] = scs_id

    groups: list[SuspiciousGroup] = []
    seen: set[tuple[Node, Node]] = set()
    for seller, buyer in tpiin.intra_scs_trades:
        if (seller, buyer) in seen:
            continue
        seen.add((seller, buyer))
        scs_id = member_to_scs.get(seller)
        if scs_id is None or member_to_scs.get(buyer) != scs_id:
            raise MiningError(
                f"intra-SCS trade ({seller!r} -> {buyer!r}) does not lie inside "
                "one saved strongly connected subgraph"
            )
        witness = shortest_path_in(tpiin.scs_subgraphs[scs_id], seller, buyer)
        groups.append(
            SuspiciousGroup(
                trading_trail=(seller, buyer),
                support_trail=witness,
                kind=GroupKind.SCS,
            )
        )
    return groups
