"""Whole-graph mining plan, compact mine records, and lazy groups.

The shared-memory parallel engine never slices the TPIIN into
per-component :class:`~repro.graph.digraph.DiGraph` objects.  Instead it
freezes the *whole* graph once (:class:`~repro.graph.csr.CSRGraph`) and
drives the kernels with the structures in this module:

* :class:`MiningPlan` — per-node component labels (influence weak
  connectivity, ordinals in the faithful segmentation's first-seen
  order), the trading adjacency pre-filtered to intra-component arcs,
  and per-component *work estimates*: for acyclic components the exact
  DFS tree size via a path-count DP (the refined form of the
  out-degree-product heuristic), used both to pick the mining kernel
  and to balance worker buckets (LPT);
* :class:`CompactMine` — the raw mining outcome as flat arrays: the DFS
  prefix forest (``parent``/``node``/``root``) plus one
  ``(tree index, target)`` pair per first-trading-arc emission.  Worker
  processes return these arrays (they pickle as byte blobs) instead of
  millions of group objects;
* :func:`count_mine` — every Table-1 tally (trails, matched, circles,
  suspicious arcs) straight off the arrays, without materializing a
  single :class:`~repro.mining.groups.SuspiciousGroup`;
* :class:`LazyGroups` / the internal group store — a sized
  ``Sequence[SuspiciousGroup]`` view that materializes the decoded
  groups once, on first access, from the same arrays.

Counting and materialization follow the same emission semantics as
:func:`repro.mining.csr_engine.mine_frozen`, so the group *set* (the
cross-engine contract) and every count agree with the other engines.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.graph.csr import CSRGraph, IntBuffer
from repro.graph.digraph import Node
from repro.mining.groups import GroupKind, SuspiciousGroup
from repro.model.colors import EColor

__all__ = [
    "CompactCounts",
    "CompactMine",
    "as_int64",
    "LazyGroups",
    "MiningPlan",
    "build_plan",
    "count_mine",
    "make_group_store",
    "merge_counts",
    "unpack_arcs",
]

_trusted = SuspiciousGroup.trusted
_MATCHED = GroupKind.MATCHED
_CIRCLE = GroupKind.CIRCLE

#: Per-node clip for the path-count DP: conglomerate DAGs can hold more
#: simple paths than atoms in the observable universe; above this the
#: estimate only needs to read as "enormous" for scheduling purposes.
_EST_CLIP = 1.0e18


def as_int64(buffer: IntBuffer) -> np.ndarray:
    """Zero-copy ``int64`` view over a CSR buffer.

    Works for both buffer kinds: an owned ``array('q')`` and a shared
    ``memoryview`` slice (:meth:`CSRGraph.from_shared`).  The view
    aliases the source — it must not outlive a shared segment.
    """
    return np.frombuffer(buffer, dtype=np.int64)


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MiningPlan:
    """Component structure + work estimates of one frozen TPIIN.

    All arrays are plain ``numpy`` data (picklable, small next to the
    adjacency): the plan rides to worker processes by value while the
    adjacency itself is attached through shared memory.
    """

    #: Node count of the frozen graph.
    n_nodes: int
    #: Influence weakly-connected component count (all of them, trivial
    #: included) — the faithful engine's ``subtpiin_count``.
    n_components: int
    #: Per node id, the component ordinal.  Ordinals follow the faithful
    #: segmentation order: first appearance in graph insertion order.
    comp_id: np.ndarray
    #: Per component, its node count.
    comp_sizes: np.ndarray
    #: Per component, its intra-component trading-arc count (zero means
    #: a trivial component the engines skip).
    trading_by_comp: np.ndarray
    #: CSR over the *intra-component* trading arcs only (the arcs the
    #: miner may emit); cross-component arcs are dropped here and
    #: tallied in :attr:`cross_count`.
    intra_offsets: np.ndarray
    intra_targets: np.ndarray
    #: Trading arcs whose endpoints fall in different components.
    cross_count: int
    #: Per component, whether its influence subgraph contains a cycle
    #: (Kahn leftovers) — cyclic components must take the guarded stack
    #: kernel, never the frontier kernel.
    cyclic: np.ndarray
    #: Per component, the predicted DFS tree size (float64).  Exact for
    #: acyclic components below the clip; a coarse size proxy for
    #: cyclic ones.
    est_tree: np.ndarray
    #: Per component, predicted tree size + emission count — the LPT
    #: bucket weight and the pool-gating work measure.
    est_work: np.ndarray

    def nontrivial(self) -> np.ndarray:
        """Ordinals of components with >= 1 intra trading arc, ascending."""
        return np.flatnonzero(self.trading_by_comp > 0)


def build_plan(csr: CSRGraph, order_nodes: Iterable[Node]) -> MiningPlan:
    """Plan a whole-graph mining run.

    ``order_nodes`` must iterate the source graph's nodes in insertion
    order — component ordinals are assigned first-seen over it, which
    reproduces :func:`~repro.graph.traversal.weakly_connected_components`
    (and hence the faithful engine's subTPIIN order) exactly.
    """
    n = len(csr)
    infl_offs = as_int64(csr.out_adjacency(EColor.INFLUENCE)[0])
    infl_tgts = as_int64(csr.out_adjacency(EColor.INFLUENCE)[1])
    tr_offs = as_int64(csr.out_adjacency(EColor.TRADING)[0])
    tr_tgts = as_int64(csr.out_adjacency(EColor.TRADING)[1])

    # --- influence weak connectivity: union-find with path halving ----
    uf = list(range(n))
    offs = infl_offs.tolist()
    tgts = infl_tgts.tolist()
    for u in range(n):
        for i in range(offs[u], offs[u + 1]):
            a, b = u, tgts[i]
            while uf[a] != a:
                uf[a] = uf[uf[a]]
                a = uf[a]
            while uf[b] != b:
                uf[b] = uf[uf[b]]
                b = uf[b]
            if a != b:
                uf[max(a, b)] = min(a, b)

    def _find(x: int) -> int:
        while uf[x] != x:
            uf[x] = uf[uf[x]]
            x = uf[x]
        return x

    # Ordinals in faithful first-seen order over graph insertion order.
    comp_id = np.empty(n, dtype=np.int64)
    ordinal_of_root: dict[int, int] = {}
    for node in order_nodes:
        u = csr.encode(node)
        r = _find(u)
        ordinal = ordinal_of_root.setdefault(r, len(ordinal_of_root))
        comp_id[u] = ordinal
    n_components = len(ordinal_of_root)
    comp_sizes = np.bincount(comp_id, minlength=n_components)

    # --- trading split: intra-component CSR + cross count -------------
    tr_deg = np.diff(tr_offs)
    tr_tails = np.repeat(np.arange(n, dtype=np.int64), tr_deg)
    intra_mask = comp_id[tr_tails] == comp_id[tr_tgts]
    intra_targets = tr_tgts[intra_mask].copy()
    intra_counts = np.bincount(tr_tails[intra_mask], minlength=n)
    intra_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(intra_counts, out=intra_offsets[1:])
    cross_count = int(tr_tgts.size - intra_targets.size)
    trading_by_comp = np.bincount(
        comp_id[tr_tails[intra_mask]], minlength=n_components
    )

    # --- Kahn: topological order + cyclic component flags -------------
    indeg = np.bincount(infl_tgts, minlength=n).tolist()
    topo = [u for u in range(n) if indeg[u] == 0]
    head = 0
    while head < len(topo):
        u = topo[head]
        head += 1
        for i in range(offs[u], offs[u + 1]):
            v = tgts[i]
            indeg[v] -= 1
            if indeg[v] == 0:
                topo.append(v)
    acyclic_node = np.zeros(n, dtype=bool)
    acyclic_node[topo] = True
    cyclic = (
        np.bincount(comp_id[~acyclic_node], minlength=n_components) > 0
    )

    # --- path-count DP (reverse topological) --------------------------
    # tree[u] = DFS tree size rooted at u = 1 + sum(tree[succ]);
    # emit[u] = emissions in that tree = intra_deg(u) + sum(emit[succ]).
    # Exact on acyclic components (the DFS never skips an arc there);
    # values feeding through a cycle are unused (cyclic flag wins).
    tree = [1.0] * n
    emit = intra_counts.astype(np.float64).tolist()
    clip = _EST_CLIP
    for u in reversed(topo):
        t_u = 1.0
        e_u = emit[u]
        for i in range(offs[u], offs[u + 1]):
            v = tgts[i]
            t_u += tree[v]
            e_u += emit[v]
        tree[u] = t_u if t_u < clip else clip
        emit[u] = e_u if e_u < clip else clip

    roots = np.flatnonzero(np.bincount(infl_tgts, minlength=n) == 0)
    tree_arr = np.asarray(tree)
    emit_arr = np.asarray(emit)
    est_tree = np.zeros(n_components, dtype=np.float64)
    est_emit = np.zeros(n_components, dtype=np.float64)
    np.add.at(est_tree, comp_id[roots], tree_arr[roots])
    np.add.at(est_emit, comp_id[roots], emit_arr[roots])
    # Cyclic components: the DP does not apply; fall back to a coarse
    # size proxy (nodes + arcs) so LPT still spreads them sensibly.
    infl_by_comp = np.bincount(comp_id[infl_tgts], minlength=n_components)
    fallback = (comp_sizes + infl_by_comp + trading_by_comp).astype(np.float64)
    est_tree = np.where(cyclic, fallback, est_tree)
    est_work = np.where(cyclic, fallback, est_tree + est_emit)

    return MiningPlan(
        n_nodes=n,
        n_components=n_components,
        comp_id=comp_id,
        comp_sizes=comp_sizes,
        trading_by_comp=trading_by_comp,
        intra_offsets=intra_offsets,
        intra_targets=intra_targets,
        cross_count=cross_count,
        cyclic=cyclic,
        est_tree=est_tree,
        est_work=est_work,
    )


# ----------------------------------------------------------------------
# the mine record
# ----------------------------------------------------------------------


@dataclass(slots=True)
class CompactMine:
    """Flat-array outcome of mining a set of components.

    ``parent``/``node``/``root`` describe the DFS prefix forest: entry
    ``i`` is one tree node — one registered influence prefix — holding
    its parent tree index (``-1`` at a root), its graph node id, and its
    root's node id.  Parents always precede children, so prefix tuples
    rebuild in one forward pass.  ``emit_tree``/``emit_target`` list the
    first-trading-arc emissions as ``(tree index, target node id)``.
    ``rule1_by_comp`` counts the pure-influence trails per component
    (Rule 1 fires), which the kernels tally directly.
    """

    parent: np.ndarray
    node: np.ndarray
    root: np.ndarray
    emit_tree: np.ndarray
    emit_target: np.ndarray
    rule1_by_comp: np.ndarray

    @classmethod
    def empty(cls, n_components: int) -> "CompactMine":
        zero = np.zeros(0, dtype=np.int64)
        return cls(
            parent=zero,
            node=zero.copy(),
            root=zero.copy(),
            emit_tree=zero.copy(),
            emit_target=zero.copy(),
            rule1_by_comp=np.zeros(n_components, dtype=np.int64),
        )

    @classmethod
    def merge(cls, parts: Sequence["CompactMine"], n_components: int) -> "CompactMine":
        """Concatenate mines over disjoint components (tree indices shifted)."""
        if not parts:
            return cls.empty(n_components)
        if len(parts) == 1:
            return parts[0]
        parents: list[np.ndarray] = []
        emit_trees: list[np.ndarray] = []
        offset = 0
        rule1 = np.zeros(n_components, dtype=np.int64)
        for part in parts:
            parents.append(np.where(part.parent < 0, -1, part.parent + offset))
            emit_trees.append(part.emit_tree + offset)
            rule1 += part.rule1_by_comp
            offset += len(part.node)
        return cls(
            parent=np.concatenate(parents),
            node=np.concatenate([p.node for p in parts]),
            root=np.concatenate([p.root for p in parts]),
            emit_tree=np.concatenate(emit_trees),
            emit_target=np.concatenate([p.emit_target for p in parts]),
            rule1_by_comp=rule1,
        )


def _circle_flags(mine: CompactMine) -> np.ndarray:
    """Per emission, whether the trading target lies on the emitting path.

    Lockstep ancestor walk: every emission climbs its prefix chain one
    parent per step, comparing labels against its target; lanes retire
    on a hit or at the root, so the walk is bounded by the tree depth
    and touches only still-live lanes.
    """
    flags = np.zeros(len(mine.emit_tree), dtype=bool)
    if not len(mine.emit_tree):
        return flags
    lanes = np.arange(len(mine.emit_tree))
    cursor = mine.emit_tree.copy()
    target = mine.emit_target
    node = mine.node
    parent = mine.parent
    while lanes.size:
        hit = node[cursor] == target[lanes]
        flags[lanes[hit]] = True
        cursor = parent[cursor]
        alive = ~hit & (cursor >= 0)
        lanes = lanes[alive]
        cursor = cursor[alive]
    return flags


def _support_index(
    mine: CompactMine, n_nodes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Tree indices sorted by ``(root, node)`` key, plus the sorted keys.

    The per-root matcher index in array form: the supports of emission
    ``(u, t)`` are the tree nodes whose key equals ``root(u) * n + t`` —
    one contiguous run of the sorted order.
    """
    keys = mine.root * n_nodes + mine.node
    order = np.argsort(keys, kind="stable")
    return order, keys[order]


# ----------------------------------------------------------------------
# counting (no group objects)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class CompactCounts:
    """Per-component tallies of one :class:`CompactMine`."""

    trails_by_comp: np.ndarray
    matched_by_comp: np.ndarray
    circle_by_comp: np.ndarray
    #: Distinct trading arcs behind >= 1 group, as sorted unique packed
    #: ``tail * n_nodes + head`` int64 keys (see :func:`unpack_arcs`).
    suspicious_arcs: np.ndarray


def count_mine(mine: CompactMine, plan: MiningPlan) -> CompactCounts:
    """All tallies straight off the arrays.

    Matched groups per emission equal the emission root's tree-node
    count at the target label (the fused matcher's ``index[t]`` size);
    circle emissions dedup on their ancestor-walk node tuple, which is
    in bijection with ``mine_frozen``'s forward circle ids.
    """
    n_components = plan.n_components
    comp_id = plan.comp_id
    trails = mine.rule1_by_comp.copy()
    matched = np.zeros(n_components, dtype=np.int64)
    circles = np.zeros(n_components, dtype=np.int64)
    n_emit = len(mine.emit_tree)
    if not n_emit:
        return CompactCounts(
            trails, matched, circles, np.zeros(0, dtype=np.int64)
        )

    emit_node = mine.node[mine.emit_tree]
    emit_comp = comp_id[emit_node]
    trails += np.bincount(emit_comp, minlength=n_components)

    circle = _circle_flags(mine)
    noncircle = np.flatnonzero(~circle)
    order, sorted_keys = _support_index(mine, plan.n_nodes)
    del order
    queries = (
        mine.root[mine.emit_tree[noncircle]] * plan.n_nodes
        + mine.emit_target[noncircle]
    )
    lo = np.searchsorted(sorted_keys, queries, side="left")
    hi = np.searchsorted(sorted_keys, queries, side="right")
    supports = hi - lo
    np.add.at(matched, emit_comp[noncircle], supports)

    # Circle dedup: reversed parent-walk keys, one python walk per
    # (rare) circle emission.
    node_l = mine.node.tolist()
    parent_l = mine.parent.tolist()
    seen: set[tuple[int, ...]] = set()
    circle_lanes = np.flatnonzero(circle)
    emit_tree_l = mine.emit_tree.tolist()
    emit_target_l = mine.emit_target.tolist()
    for lane in circle_lanes.tolist():
        cursor = emit_tree_l[lane]
        target = emit_target_l[lane]
        walk = [node_l[cursor]]
        while node_l[cursor] != target:
            cursor = parent_l[cursor]
            walk.append(node_l[cursor])
        key = tuple(walk)
        if key not in seen:
            seen.add(key)
            circles[comp_id[target]] += 1

    # Suspicious arcs, vectorized: circle emissions always back a group;
    # non-circle ones only with at least one support.
    grouped = np.concatenate((noncircle[supports > 0], circle_lanes))
    arcs = np.unique(
        emit_node[grouped] * plan.n_nodes + mine.emit_target[grouped]
    )
    return CompactCounts(trails, matched, circles, arcs)


def merge_counts(
    parts: Sequence[CompactCounts], n_components: int
) -> CompactCounts:
    """Sum tallies over disjoint component sets (worker bucket join)."""
    trails = np.zeros(n_components, dtype=np.int64)
    matched = np.zeros(n_components, dtype=np.int64)
    circles = np.zeros(n_components, dtype=np.int64)
    for part in parts:
        trails += part.trails_by_comp
        matched += part.matched_by_comp
        circles += part.circle_by_comp
    arcs = np.unique(
        np.concatenate(
            [p.suspicious_arcs for p in parts] or [np.zeros(0, dtype=np.int64)]
        )
    )
    return CompactCounts(trails, matched, circles, arcs)


def unpack_arcs(keys: np.ndarray, n_nodes: int) -> tuple[np.ndarray, np.ndarray]:
    """Packed ``tail * n_nodes + head`` arc keys back to id pairs."""
    return keys // n_nodes, keys % n_nodes


# ----------------------------------------------------------------------
# lazy materialization
# ----------------------------------------------------------------------


class _GroupStore:
    """Materialize-once holder of every mined group, keyed by component.

    The full pass over the prefix forest runs at most once per store —
    on the first access through any :class:`LazyGroups` view — and its
    result is shared by all views (top-level and per-subTPIIN).
    """

    __slots__ = ("_mine", "_decode", "_comp_id", "_n_nodes", "_by_comp")

    def __init__(
        self,
        mine: CompactMine,
        decode: tuple[Node, ...],
        comp_id: np.ndarray,
    ) -> None:
        self._mine = mine
        self._decode = decode
        self._comp_id = comp_id
        self._n_nodes = len(decode)
        self._by_comp: dict[int, list[SuspiciousGroup]] | None = None

    def groups_for(self, comp: int | None) -> list[SuspiciousGroup]:
        if self._by_comp is None:
            self._by_comp = _materialize(
                self._mine, self._decode, self._comp_id, self._n_nodes
            )
        if comp is not None:
            return self._by_comp.get(comp, [])
        merged: list[SuspiciousGroup] = []
        for ordinal in sorted(self._by_comp):
            merged.extend(self._by_comp[ordinal])
        return merged


def make_group_store(
    mine: CompactMine, decode: tuple[Node, ...], comp_id: np.ndarray
) -> _GroupStore:
    """The shared store backing a run's :class:`LazyGroups` views."""
    return _GroupStore(mine, decode, comp_id)


def _materialize(
    mine: CompactMine,
    decode: tuple[Node, ...],
    comp_id: np.ndarray,
    n_nodes: int,
) -> dict[int, list[SuspiciousGroup]]:
    """Decode every group from the arrays, grouped by component ordinal.

    Reproduces ``mine_frozen``'s emission semantics: one matched group
    per (emission, same-root prefix ending at the target), circle
    groups deduped on their cycle node tuple.  The group set — and the
    per-component count — equal :func:`count_mine`'s tallies by
    construction (same index, same dedup keys).
    """
    by_comp: dict[int, list[SuspiciousGroup]] = {}
    n_tree = len(mine.node)
    if not n_tree:
        return by_comp
    parent_l = mine.parent.tolist()
    node_l = mine.node.tolist()
    # Prefix tuples in one forward pass (parents precede children).
    prefixes: list[tuple[Node, ...]] = [()] * n_tree
    for i in range(n_tree):
        p = parent_l[i]
        label = decode[node_l[i]]
        prefixes[i] = prefixes[p] + (label,) if p >= 0 else (label,)

    circle = _circle_flags(mine)
    order, sorted_keys = _support_index(mine, n_nodes)
    queries = mine.root[mine.emit_tree] * n_nodes + mine.emit_target
    lo_arr = np.searchsorted(sorted_keys, queries, side="left").tolist()
    hi_arr = np.searchsorted(sorted_keys, queries, side="right").tolist()
    order_l = order.tolist()
    emit_tree_l = mine.emit_tree.tolist()
    emit_target_l = mine.emit_target.tolist()
    circle_l = circle.tolist()
    comp_id_l = comp_id.tolist()
    seen: set[tuple[int, ...]] = set()
    for lane in range(len(emit_tree_l)):
        tree_idx = emit_tree_l[lane]
        target = emit_target_l[lane]
        out = by_comp.setdefault(comp_id_l[target], [])
        end = decode[target]
        if circle_l[lane]:
            cursor = tree_idx
            walk = [node_l[cursor]]
            while node_l[cursor] != target:
                cursor = parent_l[cursor]
                walk.append(node_l[cursor])
            key = tuple(walk)
            if key in seen:
                continue
            seen.add(key)
            walk.reverse()
            trail = tuple(decode[u] for u in walk) + (end,)
            out.append(_trusted(trail, (end,), _CIRCLE))
            continue
        lo = lo_arr[lane]
        hi = hi_arr[lane]
        if lo == hi:
            continue
        trading_trail = prefixes[tree_idx] + (end,)
        for j in range(lo, hi):
            out.append(_trusted(trading_trail, prefixes[order_l[j]], _MATCHED))
    return by_comp


def _rebuild_lazy_groups(items: list[SuspiciousGroup]) -> "LazyGroups":
    """Unpickle target: a pre-materialized :class:`LazyGroups`."""
    return LazyGroups.from_list(items)


class LazyGroups(Sequence[SuspiciousGroup]):
    """A sized, lazily-materialized sequence of suspicious groups.

    ``len`` is O(1) (the counts come from :func:`count_mine`); the group
    objects are decoded from the compact arrays on first element access
    and cached.  ``tail`` carries eager extras appended after the mined
    groups (the SCS groups on the top-level view).  Pickling
    materializes — workers return arrays, not these views, so pickle
    only happens when a *caller* stores results.
    """

    __slots__ = ("_store", "_comp", "_length", "_tail", "_items")

    def __init__(
        self,
        store: _GroupStore,
        comp: int | None,
        mined_count: int,
        tail: Sequence[SuspiciousGroup] = (),
    ) -> None:
        self._store: _GroupStore | None = store
        self._comp = comp
        self._tail = list(tail)
        self._length = mined_count + len(self._tail)
        self._items: list[SuspiciousGroup] | None = None

    @classmethod
    def from_list(cls, items: list[SuspiciousGroup]) -> "LazyGroups":
        view = cls.__new__(cls)
        view._store = None
        view._comp = None
        view._tail = []
        view._length = len(items)
        view._items = items
        return view

    def _materialized(self) -> list[SuspiciousGroup]:
        if self._items is None:
            assert self._store is not None
            items = self._store.groups_for(self._comp)
            if self._tail:
                items = items + self._tail
            if len(items) != self._length:
                raise RuntimeError(
                    f"lazy group view materialized {len(items)} groups but "
                    f"was sized {self._length} (count/materialize drift)"
                )
            self._items = items
        return self._items

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: Any) -> Any:
        return self._materialized()[index]

    def __iter__(self) -> Iterator[SuspiciousGroup]:
        return iter(self._materialized())

    def __reduce__(self) -> tuple[Any, ...]:
        return (_rebuild_lazy_groups, (self._materialized(),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._items is None else "materialized"
        scope = "all components" if self._comp is None else f"component {self._comp}"
        return f"<LazyGroups {self._length} groups ({scope}, {state})>"
