"""Optimized detection engine, semantics-equivalent to Algorithm 1/2.

The faithful engine materializes the full component pattern base, whose
type-(b) walk count is (root-paths to each company) x (that company's
trading outdegree) — millions of objects at Table-1's densest setting.
This engine produces the *same* groups without ever materializing the
base:

1. a packed root-ancestor index answers "do these endpoints share an
   antecedent?" for every trading arc in bulk (non-suspicious arcs — the
   overwhelming majority — cost one vectorized AND);
2. for each suspicious arc ``(c1, c2)``, groups are enumerated as
   ``paths(r, c1) x paths(r, c2)`` over the endpoints' common roots
   ``r``, with influence paths enumerated once per root and cached;
3. circle groups come from the paths ``c2 ~> c1`` in the antecedent
   network, and SCS groups from the saved investment subgraphs.

Equivalence with the faithful engine is property-tested; the mapping
between matched pattern pairs and root path pairs is spelled out in
DESIGN.md.
"""

from __future__ import annotations

import warnings
from collections import Counter
from collections.abc import Callable

from repro.fusion.tpiin import TPIIN
from repro.graph.bitset import RootAncestorIndex
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import weakly_connected_components
from repro.mining.detector import DetectionResult, detect
from repro.mining.groups import GroupKind, SuspiciousGroup
from repro.mining.options import Engine
from repro.mining.scs_groups import scs_suspicious_groups
from repro.model.colors import EColor
from repro.obs.tracing import NULL_TRACER, TracerLike

__all__ = [
    "enumerate_arc_groups",
    "enumerate_root_paths",
    "fast_detect",
    "paths_between",
]


def enumerate_root_paths(
    graph: DiGraph | CSRGraph, root: Node, color: object = EColor.INFLUENCE
) -> dict[Node, list[tuple[Node, ...]]]:
    """All influence paths from ``root``, grouped by their end node.

    Includes the trivial path ``(root,)`` under ``root`` itself — a root
    that is a company can support a group with itself as antecedent.
    Accepts a mutable :class:`DiGraph` or a frozen :class:`CSRGraph`;
    over the frozen kernel the walk reads pre-sorted int rows instead of
    paying a string-keyed ``sorted(successors(...))`` per step.
    """
    if isinstance(graph, CSRGraph):
        return _enumerate_root_paths_csr(graph, root, color)
    by_end: dict[Node, list[tuple[Node, ...]]] = {root: [(root,)]}
    # Iterative DFS over influence arcs; the antecedent net is a DAG so
    # no on-path guard is needed, but one is kept for robustness.
    path = [root]
    on_path = {root}
    iters = [iter(sorted(graph.successors(root, color), key=str))]
    while iters:
        try:
            nxt = next(iters[-1])
        except StopIteration:
            iters.pop()
            on_path.discard(path.pop())
            continue
        if nxt in on_path:
            continue
        path.append(nxt)
        on_path.add(nxt)
        by_end.setdefault(nxt, []).append(tuple(path))
        iters.append(iter(sorted(graph.successors(nxt, color), key=str)))
    return by_end


def _enumerate_root_paths_csr(
    csr: CSRGraph, root: Node, color: object
) -> dict[Node, list[tuple[Node, ...]]]:
    """:func:`enumerate_root_paths` over the frozen kernel.

    The DFS runs in id space (rows are pre-sorted, so emission order
    matches the hash-based walk); paths are decoded as they are emitted.
    """
    offsets, targets = csr.out_adjacency(color)
    decode = csr.decode_table
    r = csr.encode(root)
    by_end: dict[Node, list[tuple[Node, ...]]] = {root: [(root,)]}
    path = [r]
    on_path = {r}
    cursor = [offsets[r]]
    ends = [offsets[r + 1]]
    while cursor:
        i = cursor[-1]
        if i == ends[-1]:
            cursor.pop()
            ends.pop()
            on_path.discard(path.pop())
            continue
        cursor[-1] = i + 1
        nxt = targets[i]
        if nxt in on_path:
            continue
        path.append(nxt)
        on_path.add(nxt)
        by_end.setdefault(decode[nxt], []).append(tuple(decode[u] for u in path))
        cursor.append(offsets[nxt])
        ends.append(offsets[nxt + 1])
    return by_end


def paths_between(
    graph: DiGraph | CSRGraph,
    source: Node,
    target: Node,
    color: object = EColor.INFLUENCE,
) -> list[tuple[Node, ...]]:
    """All simple influence paths ``source ~> target``.

    Prunes the search to nodes that can still reach ``target`` (one
    reverse DFS), so dead branches cost nothing; used for circle-group
    enumeration where such paths are rare and short.  Accepts a mutable
    :class:`DiGraph` or a frozen :class:`CSRGraph`.
    """
    if isinstance(graph, CSRGraph):
        return _paths_between_csr(graph, source, target, color)
    can_reach: set[Node] = {target}
    stack = [target]
    while stack:
        node = stack.pop()
        for prev in graph.predecessors(node, color):
            if prev not in can_reach:
                can_reach.add(prev)
                stack.append(prev)
    if source not in can_reach:
        return []
    results: list[tuple[Node, ...]] = []
    path = [source]
    on_path = {source}
    iters = [iter(sorted(graph.successors(source, color), key=str))]
    if source == target:
        return [(source,)]
    while iters:
        try:
            nxt = next(iters[-1])
        except StopIteration:
            iters.pop()
            on_path.discard(path.pop())
            continue
        if nxt not in can_reach or nxt in on_path:
            continue
        if nxt == target:
            results.append(tuple(path) + (target,))
            continue
        path.append(nxt)
        on_path.add(nxt)
        iters.append(iter(sorted(graph.successors(nxt, color), key=str)))
    return results


def _paths_between_csr(
    csr: CSRGraph, source: Node, target: Node, color: object
) -> list[tuple[Node, ...]]:
    """:func:`paths_between` over the frozen kernel (id-space DFS)."""
    s = csr.encode(source)
    t = csr.encode(target)
    in_offsets, in_targets = csr.in_adjacency(color)
    can_reach = {t}
    stack = [t]
    while stack:
        u = stack.pop()
        for i in range(in_offsets[u], in_offsets[u + 1]):
            prev = in_targets[i]
            if prev not in can_reach:
                can_reach.add(prev)
                stack.append(prev)
    if s not in can_reach:
        return []
    if s == t:
        return [(source,)]
    offsets, targets = csr.out_adjacency(color)
    decode = csr.decode_table
    results: list[tuple[Node, ...]] = []
    path = [s]
    on_path = {s}
    cursor = [offsets[s]]
    ends = [offsets[s + 1]]
    while cursor:
        i = cursor[-1]
        if i == ends[-1]:
            cursor.pop()
            ends.pop()
            on_path.discard(path.pop())
            continue
        cursor[-1] = i + 1
        nxt = targets[i]
        if nxt not in can_reach or nxt in on_path:
            continue
        if nxt == t:
            results.append(tuple(decode[u] for u in path) + (target,))
            continue
        path.append(nxt)
        on_path.add(nxt)
        cursor.append(offsets[nxt])
        ends.append(offsets[nxt + 1])
    return results


def enumerate_arc_groups(
    graph: DiGraph | CSRGraph,
    index: RootAncestorIndex,
    paths_of: Callable[[Node], dict[Node, list[tuple[Node, ...]]]],
    c1: Node,
    c2: Node,
) -> list[SuspiciousGroup]:
    """All matched and circle groups behind the trading arc ``c1 -> c2``.

    Shared by the batch fast engine and the streaming detector so their
    per-arc semantics cannot drift.  ``paths_of(root)`` must return the
    per-end-node influence path lists of :func:`enumerate_root_paths`;
    ``graph`` may be the mutable antecedent graph or its frozen kernel.
    """
    groups: list[SuspiciousGroup] = []
    for back_path in paths_between(graph, c2, c1, EColor.INFLUENCE):
        groups.append(
            SuspiciousGroup(
                trading_trail=back_path + (c2,),
                support_trail=(c2,),
                kind=GroupKind.CIRCLE,
            )
        )
    if index.shares_root(c1, c2):
        for root in sorted(index.common_roots(c1, c2), key=str):
            by_end = paths_of(root)
            lead_paths = by_end.get(c1, ())
            support_paths = by_end.get(c2, ())
            if not lead_paths or not support_paths:
                continue
            for lead in lead_paths:
                if c2 in lead:
                    continue  # would revisit the end node: not a simple trail
                for support in support_paths:
                    groups.append(
                        SuspiciousGroup(
                            trading_trail=lead + (c2,),
                            support_trail=support,
                            kind=GroupKind.MATCHED,
                        )
                    )
    return groups


def fast_detect(tpiin: TPIIN, *, collect_groups: bool = True) -> DetectionResult:
    """Deprecated front door to the optimized engine.

    .. deprecated::
        Call ``detect(tpiin, engine=Engine.FAST)`` (or construct a
        :class:`~repro.mining.options.DetectOptions`) instead.  This
        alias is kept exported for one release; reprolint rule R011
        rejects new first-party call sites.
    """
    warnings.warn(
        "fast_detect() is deprecated; use "
        "detect(tpiin, engine=Engine.FAST) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return detect(tpiin, engine=Engine.FAST, collect_groups=collect_groups)


def _fast_detect(
    tpiin: TPIIN,
    *,
    collect_groups: bool = True,
    tracer: TracerLike = NULL_TRACER,
) -> DetectionResult:
    """Run the optimized engine over a whole TPIIN.

    With ``collect_groups=False`` only the Table-1 tallies (simple /
    complex / kind counts and the suspicious-arc set) are produced, which
    keeps the densest sweep points within a modest memory budget.
    """
    graph = tpiin.graph
    arcs = list(tpiin.trading_arcs())
    with tracer.span("root_index") as index_span:
        index = RootAncestorIndex(graph, EColor.INFLUENCE)
        if tracer.enabled:
            index_span.set(trading_arcs=len(arcs))

    suspicious_arcs: set[tuple[Node, Node]] = set()
    with tracer.span("arc_scan") as scan_span:
        if arcs:
            mask = index.shares_root_bulk([a for a, _ in arcs], [b for _, b in arcs])
            suspicious_arcs = {arc for arc, flag in zip(arcs, mask) if flag}
        if tracer.enabled:
            scan_span.set(trading_arcs=len(arcs), suspicious=len(suspicious_arcs))

    groups: list[SuspiciousGroup] = []
    simple = 0
    complex_ = 0
    kinds: Counter[GroupKind] = Counter()
    path_cache: dict[Node, dict[Node, list[tuple[Node, ...]]]] = {}

    if suspicious_arcs:
        # Per-arc enumeration walks only influence arcs; freeze them
        # into the CSR kernel once (skipped when nothing is suspicious).
        with tracer.span("freeze"):
            frozen = CSRGraph.freeze(graph, colors=(EColor.INFLUENCE,))

        def paths_of(root: Node) -> dict[Node, list[tuple[Node, ...]]]:
            cached = path_cache.get(root)
            if cached is None:
                cached = enumerate_root_paths(frozen, root, EColor.INFLUENCE)
                path_cache[root] = cached
            return cached

        with tracer.span("arc_groups") as arc_span:
            for c1, c2 in sorted(
                suspicious_arcs, key=lambda a: (str(a[0]), str(a[1]))
            ):
                for group in enumerate_arc_groups(frozen, index, paths_of, c1, c2):
                    kinds[group.kind] += 1
                    if group.is_simple:
                        simple += 1
                    else:
                        complex_ += 1
                    if collect_groups:
                        groups.append(group)
            if tracer.enabled:
                arc_span.set(
                    suspicious_arcs=len(suspicious_arcs),
                    groups=simple + complex_,
                    cached_roots=len(path_cache),
                )

    with tracer.span("scs_groups") as scs_span:
        scs_count = 0
        for group in scs_suspicious_groups(tpiin):
            kinds[GroupKind.SCS] += 1
            simple += 1
            scs_count += 1
            suspicious_arcs.add(group.trading_arc)
            if collect_groups:
                groups.append(group)
        if tracer.enabled:
            scs_span.set(groups=scs_count)

    components = weakly_connected_components(graph, EColor.INFLUENCE)
    component_of: dict[Node, int] = {}
    for i, component in enumerate(components):
        for node in component:
            component_of[node] = i
    cross = sum(1 for t, h in arcs if component_of[t] != component_of[h])

    return DetectionResult(
        groups=groups if collect_groups else [],
        total_trading_arcs=len(arcs) + len(tpiin.intra_scs_trades),
        cross_component_trades=cross,
        subtpiin_count=len(components),
        engine="fast",
        pattern_trail_count=None,
        simple_count_override=None if collect_groups else simple,
        complex_count_override=None if collect_groups else complex_,
        kind_counts_override=None if collect_groups else kinds,
        suspicious_arcs_override=None if collect_groups else suspicious_arcs,
    )
