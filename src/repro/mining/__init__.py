"""Suspicious-group mining (Section 4.3, Algorithms 1 and 2)."""

from repro.mining.csr_engine import build_patterns_tree_csr, csr_detect
from repro.mining.detector import DetectionResult, SubTPIINResult, detect
from repro.mining.fast import fast_detect  # reprolint: disable=R011  (deprecated alias stays exported)
from repro.mining.groups import GroupKind, SuspiciousGroup, minimal_groups
from repro.mining.incremental import ArcUpdate, IncrementalDetector, PathCacheStats
from repro.mining.matching import match_component_patterns, match_pairs_naive
from repro.mining.options import DetectOptions, Engine, TraceSpec
from repro.mining.oracle import suspicious_arc_oracle, suspicious_arc_oracle_closure
from repro.mining.parallel import parallel_detect
from repro.mining.sampling import ShareEstimate, estimate_suspicious_share
from repro.mining.patterns import (
    PatternsTreeResult,
    PatternTrail,
    PatternTreeNode,
    build_patterns_tree,
    list_d_order,
)
from repro.mining.scs_groups import scs_suspicious_groups
from repro.mining.segmentation import SegmentationResult, SubTPIIN, segment
from repro.mining.temporal import TimedTrade, WindowResult, sliding_window_detect

__all__ = [
    "ArcUpdate",
    "DetectOptions",
    "DetectionResult",
    "Engine",
    "GroupKind",
    "IncrementalDetector",
    "PathCacheStats",
    "PatternTrail",
    "PatternTreeNode",
    "PatternsTreeResult",
    "SegmentationResult",
    "SubTPIIN",
    "SubTPIINResult",
    "SuspiciousGroup",
    "TimedTrade",
    "TraceSpec",
    "WindowResult",
    "sliding_window_detect",
    "build_patterns_tree",
    "build_patterns_tree_csr",
    "csr_detect",
    "ShareEstimate",
    "detect",
    "estimate_suspicious_share",
    "fast_detect",
    "list_d_order",
    "match_component_patterns",
    "match_pairs_naive",
    "minimal_groups",
    "parallel_detect",
    "scs_suspicious_groups",
    "segment",
    "suspicious_arc_oracle",
    "suspicious_arc_oracle_closure",
]
