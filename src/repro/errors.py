"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure families.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "ArcNotFoundError",
    "DuplicateNodeError",
    "ValidationError",
    "NotADagError",
    "FusionError",
    "MiningError",
    "DataGenError",
    "EvaluationError",
    "SerializationError",
    "ServiceError",
    "BackpressureError",
    "ServiceClientError",
    "WALError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """A structural graph operation failed (missing node, bad arc, ...)."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class ArcNotFoundError(GraphError, KeyError):
    """A referenced arc does not exist in the graph."""

    def __init__(self, tail: object, head: object, color: object = None) -> None:
        label = f"arc ({tail!r} -> {head!r})"
        if color is not None:
            label += f" with color {color!r}"
        super().__init__(f"{label} is not in the graph")
        self.tail = tail
        self.head = head
        self.color = color


class DuplicateNodeError(GraphError):
    """A node was added twice with conflicting colors or attributes."""


class ValidationError(ReproError):
    """A network violates one of the paper's structural constraints.

    The homogeneous graphs of Section 4.1 and the fused TPIIN of
    Definition 1 each carry structural invariants (bipartiteness of the
    influence graph, acyclicity of the antecedent network, ...).  This
    error reports the first violated invariant.
    """


class NotADagError(ValidationError):
    """An operation that requires a DAG was given a cyclic graph."""


class FusionError(ReproError):
    """The multi-network fusion pipeline received inconsistent inputs."""


class MiningError(ReproError):
    """Suspicious-group mining failed on a malformed TPIIN."""


class DataGenError(ReproError):
    """A synthetic-data generator received an invalid configuration."""


class EvaluationError(ReproError):
    """An ITE-phase judgment method received inconsistent transaction data."""


class SerializationError(ReproError):
    """Reading or writing one of the on-disk formats failed."""


class ServiceError(ReproError):
    """The detection service hit an unrecoverable operational fault."""


class BackpressureError(ServiceError):
    """An ingest queue is saturated; the caller should retry later.

    Raised by the sharded service's admission control instead of
    blocking (blocking every HTTP worker on a full queue would deadlock
    the drain path).  The server maps it to ``429 Too Many Requests``
    with a ``Retry-After`` header of ``retry_after`` seconds.
    """

    def __init__(self, message: str, *, retry_after: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServiceClientError(ServiceError):
    """An HTTP call to the detection service failed.

    Carries the HTTP ``status`` (0 when the request never reached the
    server) so callers can distinguish rejections from outages, and —
    for 429 rejections — the daemon's suggested ``retry_after`` delay
    in seconds (``None`` when the response carried no such hint).
    """

    def __init__(
        self, message: str, *, status: int = 0, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class WALError(SerializationError):
    """The write-ahead log is corrupt beyond the tolerated torn tail."""
