"""Cross-engine accuracy harness.

Behind Table 1's 100% accuracy columns sits an agreement check between
the proposed method and the baseline; this module generalizes it: run
any subset of {faithful, fast, parallel, global-traversal} plus the
reachability oracle on the same TPIIN and report pairwise agreement on
group sets and suspicious-arc sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.global_traversal import global_traversal_detect
from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import Node
from repro.mining.detector import DetectionResult, detect
from repro.mining.oracle import suspicious_arc_oracle

__all__ = ["AccuracyReport", "compare_engines"]


@dataclass
class AccuracyReport:
    """Pairwise agreement between engines on one TPIIN."""

    results: dict[str, DetectionResult] = field(default_factory=dict)
    oracle_arcs: set[tuple[Node, Node]] = field(default_factory=set)
    group_agreement: dict[tuple[str, str], bool] = field(default_factory=dict)
    arc_agreement: dict[str, bool] = field(default_factory=dict)

    @property
    def all_agree(self) -> bool:
        return all(self.group_agreement.values()) and all(
            self.arc_agreement.values()
        )

    def render(self) -> str:
        lines = []
        for engine, result in self.results.items():
            lines.append(f"{engine}: {result.summary()}")
        for (a, b), ok in sorted(self.group_agreement.items()):
            lines.append(f"groups[{a} == {b}]: {'OK' if ok else 'MISMATCH'}")
        for engine, ok in sorted(self.arc_agreement.items()):
            lines.append(f"arcs[{engine} == oracle]: {'OK' if ok else 'MISMATCH'}")
        return "\n".join(lines)


def compare_engines(
    tpiin: TPIIN,
    *,
    engines: tuple[str, ...] = ("faithful", "fast", "global-traversal"),
) -> AccuracyReport:
    """Run the requested engines and compare their outputs.

    Group agreement compares deduplicated group keys (node-sequence
    pairs); arc agreement compares each engine's suspicious-arc set with
    the reachability oracle.
    """
    report = AccuracyReport(oracle_arcs=suspicious_arc_oracle(tpiin))
    for engine in engines:
        if engine == "global-traversal":
            report.results[engine] = global_traversal_detect(tpiin)
        else:
            report.results[engine] = detect(tpiin, engine=engine)

    names = list(report.results)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            keys_a = {g.key() for g in report.results[a].groups}
            keys_b = {g.key() for g in report.results[b].groups}
            report.group_agreement[(a, b)] = keys_a == keys_b
    for name, result in report.results.items():
        report.arc_agreement[name] = (
            result.suspicious_trading_arcs == report.oracle_arcs
        )
    return report
