"""Table-1 row metrics.

One :class:`Table1Row` per trading-probability setting, carrying exactly
the paper's columns: trading probability, average node degree, complex
and simple suspicious group counts, group-detection accuracy, suspicious
trading relationship count, total trading relationship count, arc
accuracy, and the suspicious percentage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fusion.tpiin import TPIIN
from repro.mining.detector import DetectionResult
from repro.mining.oracle import suspicious_arc_oracle

__all__ = ["Table1Row", "compute_table1_row"]


@dataclass(frozen=True, slots=True)
class Table1Row:
    """One row of Table 1."""

    trading_probability: float
    average_node_degree: float
    complex_groups: int
    simple_groups: int
    group_accuracy: float
    suspicious_trades: int
    total_trades: int
    trade_accuracy: float

    @property
    def suspicious_percentage(self) -> float:
        if self.total_trades == 0:
            return 0.0
        return 100.0 * self.suspicious_trades / self.total_trades

    def as_cells(self) -> list[object]:
        return [
            f"{self.trading_probability:.3f}",
            f"{self.average_node_degree:.3f}",
            self.complex_groups,
            self.simple_groups,
            f"{100 * self.group_accuracy:.0f}%",
            self.suspicious_trades,
            self.total_trades,
            f"{100 * self.trade_accuracy:.0f}%",
            f"{self.suspicious_percentage:.4f}",
        ]

    HEADERS = (
        "p(trade)",
        "avg degree",
        "complex groups",
        "simple groups",
        "grp acc",
        "suspicious trades",
        "total trades",
        "trade acc",
        "suspicious %",
    )


def compute_table1_row(
    tpiin: TPIIN,
    result: DetectionResult,
    *,
    trading_probability: float,
    reference_result: DetectionResult | None = None,
    check_oracle: bool = True,
) -> Table1Row:
    """Assemble one Table-1 row from a detection run.

    Accuracy semantics follow the paper: the detector's output is
    compared against ground truth — the reachability oracle for
    suspicious arcs, and a reference engine (faithful Algorithm 1/2, or
    the global-traversal baseline) for groups.  With no reference given,
    group accuracy is measured as agreement of the detector's per-arc
    group existence with the oracle (1.0 when every oracle arc has at
    least one group and vice versa).  ``check_oracle=False`` skips the
    ground-truth comparison (reporting 1.0) for timing-only sweeps.
    """
    detected_arcs = result.suspicious_trading_arcs
    if check_oracle:
        oracle_arcs = suspicious_arc_oracle(tpiin)
        trade_accuracy = 1.0 if detected_arcs == oracle_arcs else (
            len(detected_arcs & oracle_arcs)
            / max(1, len(detected_arcs | oracle_arcs))
        )
    else:
        trade_accuracy = 1.0

    if reference_result is not None:
        ref_simple = reference_result.simple_group_count
        ref_complex = reference_result.complex_group_count
        same_counts = (
            result.simple_group_count == ref_simple
            and result.complex_group_count == ref_complex
        )
        if reference_result.groups and result.groups:
            same = {g.key() for g in result.groups} == {
                g.key() for g in reference_result.groups
            }
            group_accuracy = 1.0 if same else 0.0
        else:
            group_accuracy = 1.0 if same_counts else 0.0
    else:
        group_accuracy = trade_accuracy

    stats = tpiin.stats()
    return Table1Row(
        trading_probability=trading_probability,
        average_node_degree=stats.average_node_degree,
        complex_groups=result.complex_group_count,
        simple_groups=result.simple_group_count,
        group_accuracy=group_accuracy,
        suspicious_trades=result.suspicious_arc_count,
        total_trades=result.total_trading_arcs,
        trade_accuracy=trade_accuracy,
    )
