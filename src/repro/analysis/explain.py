"""Proof-chain narratives: why a mined group is suspicious.

The paper repeatedly contrasts its method with black-box classifiers on
explainability: every flagged trade comes with trails a tax inspector
can read.  This module turns a :class:`SuspiciousGroup` into that
narrative, citing the entity registry (who the antecedent actually is,
which kin/interlocking links merged into the syndicate) and the fused
arcs' provenance (legal-person seat, directorship, major shareholding,
guarantee, ...).
"""

from __future__ import annotations

from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import Node
from repro.mining.detector import DetectionResult
from repro.mining.groups import GroupKind, SuspiciousGroup

__all__ = ["explain_group", "explain_arc", "critical_evidence"]

#: Provenance labels -> narrative phrases.
_LABEL_PHRASES = {
    "is-CEO-of": "is the legal representative / CEO of",
    "is-CB-of": "chairs the board of",
    "is-a-D-of": "sits on the board of",
    "is-an-CEO-and-D-of": "is executive director of",
    "Investment": "holds a major share of",
    "Affiliation": "is affiliated with",
    "guarantee": "guarantees",
    "franchise": "franchises",
    "licensing": "licenses intellectual property to",
    "exclusive-supply": "is the exclusive supplier of",
}


def _describe_node(node: Node, tpiin: TPIIN) -> str:
    registry = tpiin.registry
    if registry is not None and str(node) in registry.syndicates:
        syndicate = registry.syndicates[str(node)]
        members = ", ".join(sorted(syndicate.members))
        via = " and ".join(sorted(syndicate.via)) or "interdependence"
        return f"{node} (merger of {members} via {via})"
    text = str(node)
    if text.startswith("syn:"):
        return f"{node} (person syndicate {text[4:].replace('+', ', ')})"
    if text.startswith("scs:"):
        return f"{node} (mutual-investment bloc {text[4:].replace('+', ', ')})"
    return text


def _hop_phrase(tail: Node, head: Node, tpiin: TPIIN) -> str:
    labels = tpiin.provenance_of(tail, head)
    if labels:
        phrases = sorted(_LABEL_PHRASES.get(label, label) for label in labels)
        return " and ".join(phrases)
    return "influences"


def _trail_sentence(trail: tuple[Node, ...], tpiin: TPIIN) -> str:
    parts = [str(trail[0])]
    for tail, head in zip(trail, trail[1:]):
        parts.append(f"{_hop_phrase(tail, head, tpiin)} {head}")
    return ", which ".join(parts)


def explain_group(group: SuspiciousGroup, tpiin: TPIIN) -> str:
    """A multi-line, inspector-readable narrative for one group."""
    seller, buyer = group.trading_arc
    lines: list[str] = []
    if group.kind is GroupKind.SCS:
        lines.append(
            f"Trade {seller} -> {buyer} runs inside one mutual-investment "
            f"bloc: the parties own each other through the circle "
            f"{' -> '.join(str(n) for n in group.support_trail)}."
        )
        lines.append(
            "Any transfer price between them moves money within the same "
            "controlling structure."
        )
        return "\n".join(lines)
    if group.kind is GroupKind.CIRCLE:
        path = " -> ".join(str(n) for n in group.trading_trail[:-1])
        lines.append(
            f"Trade {seller} -> {buyer} closes a control circle: "
            f"{path} already controls the seller through the chain above, "
            f"so the buyer trades with a company it ultimately controls."
        )
        return "\n".join(lines)

    antecedent = _describe_node(group.antecedent, tpiin)
    lines.append(
        f"Companies {seller} and {buyer} share the antecedent {antecedent} "
        f"behind the trade {seller} -> {buyer}:"
    )
    lines.append(
        f"  - trail to the seller: {_trail_sentence(group.trading_trail[:-1], tpiin)}"
    )
    lines.append(
        f"  - trail to the buyer:  {_trail_sentence(group.support_trail, tpiin)}"
    )
    kind = "disjoint (a simple group)" if group.is_simple else (
        "overlapping (a complex group)"
    )
    lines.append(
        f"The two trails are {kind}; together with the transaction they "
        f"form the proof chain of Definition 2."
    )
    return "\n".join(lines)


def critical_evidence(
    arc: tuple[Node, Node], result: DetectionResult
) -> frozenset[tuple[Node, Node]]:
    """Influence arcs appearing in *every* proof chain behind ``arc``.

    These are the relationships an auditor must verify first: refuting
    any one of them breaks all the groups at once, while refuting a
    non-critical arc leaves other proof chains standing.  Returns the
    empty set when the arc is unsuspicious, and also when no single
    influence arc is shared by every chain (the evidence is redundant —
    the strongest position for the tax authority).
    """
    groups = result.groups_for_arc(arc)
    if not groups:
        return frozenset()
    chains: list[set[tuple[Node, Node]]] = []
    for group in groups:
        edges: set[tuple[Node, Node]] = set()
        lead = group.trading_trail
        edges.update(zip(lead[:-2], lead[1:-1]))  # influence prefix only
        edges.update(zip(group.support_trail, group.support_trail[1:]))
        chains.append(edges)
    common = set(chains[0])
    for edges in chains[1:]:
        common &= edges
    return frozenset(common)


def explain_arc(
    arc: tuple[Node, Node],
    result: DetectionResult,
    tpiin: TPIIN,
    *,
    max_groups: int = 3,
) -> str:
    """Narratives for (up to ``max_groups``) proof chains behind one arc."""
    groups = result.groups_for_arc(arc)
    if not groups:
        return (
            f"Trade {arc[0]} -> {arc[1]} has no common antecedent in the "
            f"TPIIN; it is not an IAT candidate."
        )
    parts = [
        f"Trade {arc[0]} -> {arc[1]}: {len(groups)} proof chain(s); "
        f"showing {min(max_groups, len(groups))}."
    ]
    for group in groups[:max_groups]:
        parts.append(explain_group(group, tpiin))
    critical = critical_evidence(arc, result)
    if critical:
        listing = ", ".join(
            f"{t} -> {h}" for t, h in sorted(critical, key=lambda a: str(a))
        )
        parts.append(
            f"Critical evidence (in every proof chain): {listing}. "
            f"Verify these relationships first."
        )
    elif len(groups) > 1:
        parts.append(
            "No single influence relationship is shared by every proof "
            "chain: the evidence is redundant."
        )
    return "\n\n".join(parts)
