"""Markdown audit-report writer.

Bundles one detection run into the document a provincial audit office
would circulate (the narrative equivalent of the Servyou system's
screens): network overview, Table-1-style headline metrics,
distributional statistics, the top-ranked suspicious trades with their
proof chains, and — when a transaction book was adjudicated — the
ITE-phase outcome.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.distributions import compute_distributions
from repro.analysis.reporting import render_table
from repro.fusion.tpiin import TPIIN
from repro.ite.pipeline import TwoPhaseResult
from repro.mining.detector import DetectionResult
from repro.weights.scoring import ArcWeights, WeightConfig, rank_trading_arcs

__all__ = ["build_audit_report", "write_audit_report"]


def build_audit_report(
    tpiin: TPIIN,
    result: DetectionResult,
    *,
    two_phase: TwoPhaseResult | None = None,
    weight_config: WeightConfig | None = None,
    arc_weights: ArcWeights | None = None,
    top: int = 10,
    title: str = "Suspicious tax-evasion group audit",
) -> str:
    """Render the full markdown report as a string."""
    stats = tpiin.stats()
    lines: list[str] = [f"# {title}", ""]

    lines += [
        "## Network overview",
        "",
        f"- persons (incl. syndicates): **{stats.persons:,}**",
        f"- companies (incl. syndicates): **{stats.companies:,}**",
        f"- influence arcs (antecedent network): **{stats.influence_arcs:,}**",
        f"- trading arcs: **{stats.trading_arcs:,}**"
        + (
            f" (+{len(tpiin.intra_scs_trades)} intra-SCS trades)"
            if tpiin.intra_scs_trades
            else ""
        ),
        f"- average node degree: **{stats.average_node_degree:.3f}**",
        "",
    ]

    kinds = result.kind_counts()
    lines += [
        "## Headline detection metrics",
        "",
        render_table(
            ["metric", "value"],
            [
                ["detector", f"{result.detector} v{result.detector_version}"],
                ["engine", result.engine],
                ["subTPIINs", result.subtpiin_count],
                ["complex suspicious groups", result.complex_group_count],
                ["simple suspicious groups", result.simple_group_count],
                ["suspicious trading relationships", result.suspicious_arc_count],
                ["total trading relationships", result.total_trading_arcs],
                [
                    "suspicious share",
                    f"{100 * result.suspicious_arc_share:.4f}%",
                ],
                [
                    "groups by kind",
                    ", ".join(f"{k.value}={v}" for k, v in kinds.items()) or "-",
                ],
                ["cross-component trades dismissed", result.cross_component_trades],
            ],
            align_right=False,
        ),
        "",
    ]

    if result.groups:
        lines += [
            "## Distributions",
            "",
            "```",
            compute_distributions(result, top=top).render(top=top),
            "```",
            "",
            f"## Top {top} suspicious trading relationships",
            "",
        ]
        ranked = rank_trading_arcs(
            result, tpiin, weight_config, arc_weights=arc_weights
        )
        for score, (seller, buyer) in ranked[:top]:
            lines.append(f"### {seller} -> {buyer}  (suspicion {score:.3f})")
            lines.append("")
            for group in result.groups_for_arc((seller, buyer))[:5]:
                lines.append(f"- `{group.render()}`")
            lines.append("")

    if two_phase is not None:
        lines += [
            "## ITE-phase outcome",
            "",
            render_table(
                ["metric", "value"],
                [
                    ["transactions on file", two_phase.transactions_total],
                    ["transactions examined", two_phase.transactions_examined],
                    ["workload share", f"{100 * two_phase.workload_share:.2f}%"],
                    ["transactions flagged", len(two_phase.flagged)],
                    ["precision", f"{two_phase.precision:.3f}"],
                    ["recall", f"{two_phase.recall:.3f}"],
                    ["recovered tax", f"{two_phase.recovered_tax:,.0f}"],
                ],
                align_right=False,
            ),
            "",
        ]
    return "\n".join(lines)


def write_audit_report(
    path: str | Path,
    tpiin: TPIIN,
    result: DetectionResult,
    *,
    two_phase: TwoPhaseResult | None = None,
    weight_config: WeightConfig | None = None,
    arc_weights: ArcWeights | None = None,
    top: int = 10,
    title: str = "Suspicious tax-evasion group audit",
) -> Path:
    """Write :func:`build_audit_report` output to ``path``."""
    path = Path(path)
    path.write_text(
        build_audit_report(
            tpiin,
            result,
            two_phase=two_phase,
            weight_config=weight_config,
            arc_weights=arc_weights,
            top=top,
            title=title,
        )
    )
    return path
