"""Experiment metrics, accuracy harness and investigation reports."""

from repro.analysis.accuracy import AccuracyReport, compare_engines
from repro.analysis.audit_report import build_audit_report, write_audit_report
from repro.analysis.crossborder import CrossBorderScreen, screen_cross_border
from repro.analysis.explain import critical_evidence, explain_arc, explain_group
from repro.analysis.distributions import (
    DetectionDistributions,
    compute_distributions,
)
from repro.analysis.investigate import (
    CompanyInvestigation,
    extract_neighborhood,
    investigate_company,
)
from repro.analysis.metrics import Table1Row, compute_table1_row
from repro.analysis.reporting import format_number, render_table
from repro.analysis.table1 import PAPER_TABLE1, Table1Result, run_table1
from repro.analysis.trends import TrendPoint, render_trend, sparkline, suspicion_trend

__all__ = [
    "AccuracyReport",
    "CompanyInvestigation",
    "CrossBorderScreen",
    "DetectionDistributions",
    "PAPER_TABLE1",
    "build_audit_report",
    "compute_distributions",
    "write_audit_report",
    "Table1Result",
    "Table1Row",
    "compare_engines",
    "compute_table1_row",
    "critical_evidence",
    "explain_arc",
    "explain_group",
    "format_number",
    "investigate_company",
    "render_table",
    "screen_cross_border",
    "run_table1",
    "TrendPoint",
    "extract_neighborhood",
    "render_trend",
    "sparkline",
    "suspicion_trend",
]
