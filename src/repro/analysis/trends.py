"""Tax-index trend tracking over temporal detection windows.

The deployed system's menu (Fig. 17) includes "tracking the tendency of
the tax index"; combined with the temporal engine this becomes: slide a
window over the filing periods and chart how the trading volume, the
suspicious share and the alert churn evolve.  Rendering is plain text
(aligned table plus an ASCII sparkline), consistent with the rest of
the reporting layer.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.analysis.reporting import render_table
from repro.mining.temporal import WindowResult

__all__ = ["TrendPoint", "suspicion_trend", "render_trend", "sparkline"]

_SPARK_CHARS = " .:-=+*#%@"


@dataclass(frozen=True, slots=True)
class TrendPoint:
    """One window's aggregate numbers."""

    window_start: int
    window_end: int
    total_arcs: int
    suspicious_arcs: int
    group_count: int
    new_alerts: int
    resolved_alerts: int

    @property
    def suspicious_share(self) -> float:
        return self.suspicious_arcs / self.total_arcs if self.total_arcs else 0.0


def suspicion_trend(windows: Iterable[WindowResult]) -> list[TrendPoint]:
    """Condense temporal windows into trend points."""
    points: list[TrendPoint] = []
    for window in windows:
        points.append(
            TrendPoint(
                window_start=window.window_start,
                window_end=window.window_end,
                total_arcs=window.result.total_trading_arcs,
                suspicious_arcs=len(window.suspicious_arcs),
                group_count=window.result.group_count,
                new_alerts=len(window.new_suspicious),
                resolved_alerts=len(window.resolved_suspicious),
            )
        )
    return points


def sparkline(values: list[float]) -> str:
    """A tiny ASCII chart: one character per value, scaled to the max."""
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _SPARK_CHARS[0] * len(values)
    scale = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(scale, round(value / top * scale))] for value in values
    )


def render_trend(points: list[TrendPoint]) -> str:
    """Aligned trend table with a suspicious-share sparkline footer."""
    rows = [
        [
            f"[{p.window_start}, {p.window_end})",
            p.total_arcs,
            p.suspicious_arcs,
            f"{100 * p.suspicious_share:.2f}%",
            p.group_count,
            f"+{p.new_alerts}/-{p.resolved_alerts}",
        ]
        for p in points
    ]
    table = render_table(
        ["window", "trades", "suspicious", "share", "groups", "alert churn"],
        rows,
    )
    shares = [p.suspicious_share for p in points]
    return table + "\nshare trend: " + sparkline(shares)
