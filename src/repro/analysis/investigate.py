"""Per-company investigation drill-down (the Servyou system's views).

Figs. 17-19 show the deployed tax-source monitoring system: the
investment tree around a focal company, the influence graph of
monitored companies, and the affiliated-transaction analysis listing a
company's directors, its affiliated companies and the suspicious IATs
between them.  :class:`CompanyInvestigation` exposes the same queries
programmatically over a TPIIN plus a detection result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import Node
from repro.graph.traversal import ancestors, descendants
from repro.mining.detector import DetectionResult
from repro.mining.groups import SuspiciousGroup
from repro.model.colors import EColor, VColor
from repro.weights.scoring import WeightConfig, score_trading_arc

__all__ = ["CompanyInvestigation", "investigate_company", "extract_neighborhood"]


def extract_neighborhood(tpiin: TPIIN, center: Node, *, radius: int = 2) -> TPIIN:
    """The ego network around ``center`` as a standalone TPIIN.

    Collects every node within ``radius`` hops of ``center`` (following
    arcs in both directions, any color) and returns the induced TPIIN —
    the "partial influence graph of the companies monitored" view of
    Fig. 18, ready for DOT/SVG rendering.  Provenance labels for the
    surviving arcs are carried over.
    """
    if not tpiin.graph.has_node(center):
        raise MiningError(f"node {center!r} is not in the TPIIN")
    if radius < 0:
        raise MiningError("radius must be non-negative")
    keep = {center}
    frontier = {center}
    for _ in range(radius):
        nxt: set[Node] = set()
        for node in frontier:
            nxt.update(tpiin.graph.successors(node))
            nxt.update(tpiin.graph.predecessors(node))
        nxt -= keep
        keep |= nxt
        frontier = nxt
    sub = tpiin.graph.subgraph(keep)
    provenance = {
        arc: labels
        for arc, labels in tpiin.arc_provenance.items()
        if arc[0] in keep and arc[1] in keep
    }
    return TPIIN(
        graph=sub,
        registry=tpiin.registry,
        node_map={k: v for k, v in tpiin.node_map.items() if v in keep},
        arc_provenance=provenance,
    )


@dataclass
class CompanyInvestigation:
    """Everything the monitoring views show for one focal company."""

    company: Node
    influencers: list[Node] = field(default_factory=list)  # direct persons
    investors: list[Node] = field(default_factory=list)  # direct company parents
    holdings: list[Node] = field(default_factory=list)  # direct investees
    affiliated_companies: list[Node] = field(default_factory=list)
    groups: list[SuspiciousGroup] = field(default_factory=list)
    suspicious_sales: list[tuple[Node, float]] = field(default_factory=list)
    suspicious_purchases: list[tuple[Node, float]] = field(default_factory=list)
    detector: str = ""  # which detector produced `groups` (audit provenance)
    detector_version: str = ""

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready view (the serving daemon's ``/investigate``)."""
        return {
            "company": str(self.company),
            "detector": self.detector,
            "detector_version": self.detector_version,
            "influencers": [str(n) for n in self.influencers],
            "investors": [str(n) for n in self.investors],
            "holdings": [str(n) for n in self.holdings],
            "affiliated_companies": [str(n) for n in self.affiliated_companies],
            "group_count": len(self.groups),
            "groups": [g.render() for g in self.groups],
            "suspicious_sales": [
                {"buyer": str(buyer), "score": score}
                for buyer, score in self.suspicious_sales
            ],
            "suspicious_purchases": [
                {"seller": str(seller), "score": score}
                for seller, score in self.suspicious_purchases
            ],
        }

    def render(self, *, max_rows: int = 12) -> str:
        """A Fig. 19-style textual briefing."""
        lines = [f"== Affiliated transaction analysis: {self.company} =="]
        if self.detector:
            lines.append(f"detector: {self.detector} v{self.detector_version}")
        lines.append(
            "directors / influencers: " + (", ".join(map(str, self.influencers)) or "-")
        )
        lines.append("direct investors: " + (", ".join(map(str, self.investors)) or "-"))
        lines.append("direct holdings: " + (", ".join(map(str, self.holdings)) or "-"))
        lines.append(
            f"affiliated companies ({len(self.affiliated_companies)}): "
            + ", ".join(map(str, self.affiliated_companies[:max_rows]))
            + (" ..." if len(self.affiliated_companies) > max_rows else "")
        )
        lines.append(f"suspicious groups involving {self.company}: {len(self.groups)}")
        for group in self.groups[:max_rows]:
            lines.append("  " + group.render())
        if self.suspicious_sales:
            lines.append("suspicious sales (IAT candidates):")
            for buyer, score in self.suspicious_sales[:max_rows]:
                lines.append(f"  {self.company} -> {buyer}  score={score:.3f}")
        if self.suspicious_purchases:
            lines.append("suspicious purchases (IAT candidates):")
            for seller, score in self.suspicious_purchases[:max_rows]:
                lines.append(f"  {seller} -> {self.company}  score={score:.3f}")
        return "\n".join(lines)

    def investment_tree(self, tpiin: TPIIN, *, depth: int = 3) -> str:
        """Fig. 17-style indented investment tree under the company."""
        lines: list[str] = [str(self.company)]

        def walk(node: Node, level: int) -> None:
            if level > depth:
                return
            children = [
                head
                for head in tpiin.graph.successors(node, EColor.INFLUENCE)
                if tpiin.graph.node_color(head) == VColor.COMPANY
            ]
            for child in sorted(children, key=str):
                lines.append("  " * level + f"-> {child}")
                walk(child, level + 1)

        walk(self.company, 1)
        return "\n".join(lines)


def investigate_company(
    tpiin: TPIIN,
    result: DetectionResult,
    company: Node,
    *,
    weight_config: WeightConfig | None = None,
) -> CompanyInvestigation:
    """Build the drill-down views for ``company``."""
    graph = tpiin.graph
    if not graph.has_node(company):
        raise MiningError(f"company {company!r} is not in the TPIIN")
    if graph.node_color(company) != VColor.COMPANY:
        raise MiningError(f"node {company!r} is not a company")

    influencers = [
        p
        for p in graph.predecessors(company, EColor.INFLUENCE)
        if graph.node_color(p) == VColor.PERSON
    ]
    investors = [
        p
        for p in graph.predecessors(company, EColor.INFLUENCE)
        if graph.node_color(p) == VColor.COMPANY
    ]
    holdings = [
        h
        for h in graph.successors(company, EColor.INFLUENCE)
        if graph.node_color(h) == VColor.COMPANY
    ]
    # Affiliated companies: share an antecedent — i.e. companies in the
    # ancestor/descendant cone of this company's antecedent closure.
    cone = ancestors(graph, company, EColor.INFLUENCE)
    affiliated: set[Node] = set()
    for node in cone | {company}:
        affiliated.update(descendants(graph, node, EColor.INFLUENCE))
    affiliated.discard(company)
    affiliated_companies = sorted(
        (n for n in affiliated if graph.node_color(n) == VColor.COMPANY), key=str
    )

    groups = [g for g in result.groups if company in g.members]
    by_arc: dict[tuple[Node, Node], list[SuspiciousGroup]] = {}
    for group in groups:
        by_arc.setdefault(group.trading_arc, []).append(group)
    sales: list[tuple[Node, float]] = []
    purchases: list[tuple[Node, float]] = []
    for (seller, buyer), arc_groups in by_arc.items():
        score = score_trading_arc(arc_groups, tpiin, weight_config)
        if seller == company:
            sales.append((buyer, score))
        elif buyer == company:
            purchases.append((seller, score))
    sales.sort(key=lambda item: -item[1])
    purchases.sort(key=lambda item: -item[1])

    return CompanyInvestigation(
        company=company,
        influencers=sorted(influencers, key=str),
        investors=sorted(investors, key=str),
        holdings=sorted(holdings, key=str),
        affiliated_companies=affiliated_companies,
        groups=groups,
        suspicious_sales=sales,
        suspicious_purchases=purchases,
        detector=result.detector,
        detector_version=result.detector_version,
    )
