"""Cross-border IAT screening.

Two of the paper's three case studies are cross-border transfer-pricing
schemes (the Hong Kong meter export of Case 2, the US BMX export of
Case 3), and the related-party under-invoicing literature it cites
([4], [6]) is about border flows.  This module slices a detection
result along the registry's region data: which suspicious trading
relationships cross a border, in which corridors, and with what share
relative to domestic IATs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.graph.digraph import Node
from repro.mining.detector import DetectionResult
from repro.model.entities import EntityRegistry

__all__ = ["CrossBorderScreen", "screen_cross_border"]


@dataclass
class CrossBorderScreen:
    """Cross-border slice of one detection result."""

    cross_border_arcs: list[tuple[Node, Node]] = field(default_factory=list)
    domestic_arcs: list[tuple[Node, Node]] = field(default_factory=list)
    unknown_region_arcs: list[tuple[Node, Node]] = field(default_factory=list)
    corridor_counts: Counter[tuple[str, str]] = field(default_factory=Counter)

    @property
    def cross_border_share(self) -> float:
        total = (
            len(self.cross_border_arcs)
            + len(self.domestic_arcs)
            + len(self.unknown_region_arcs)
        )
        return len(self.cross_border_arcs) / total if total else 0.0

    def render(self, *, top: int = 8) -> str:
        total = (
            len(self.cross_border_arcs)
            + len(self.domestic_arcs)
            + len(self.unknown_region_arcs)
        )
        lines = [
            f"suspicious trading relationships: {total}",
            f"  cross-border: {len(self.cross_border_arcs)} "
            f"({100 * self.cross_border_share:.1f}%)",
            f"  domestic:     {len(self.domestic_arcs)}",
        ]
        if self.unknown_region_arcs:
            lines.append(f"  unknown region: {len(self.unknown_region_arcs)}")
        if self.corridor_counts:
            lines.append("top corridors:")
            for (src, dst), count in self.corridor_counts.most_common(top):
                lines.append(f"  {src} -> {dst}: {count}")
        return "\n".join(lines)


def screen_cross_border(
    result: DetectionResult, registry: EntityRegistry
) -> CrossBorderScreen:
    """Split the suspicious arcs by the trading parties' regions.

    Arcs whose endpoints are unknown to the registry (or are contracted
    syndicates mixing regions) land in ``unknown_region_arcs`` rather
    than being silently classified.
    """
    screen = CrossBorderScreen()
    for seller, buyer in sorted(
        result.suspicious_trading_arcs, key=lambda a: (str(a[0]), str(a[1]))
    ):
        seller_company = registry.companies.get(str(seller))
        buyer_company = registry.companies.get(str(buyer))
        if seller_company is None or buyer_company is None:
            screen.unknown_region_arcs.append((seller, buyer))
            continue
        src, dst = seller_company.region, buyer_company.region
        if src != dst:
            screen.cross_border_arcs.append((seller, buyer))
            screen.corridor_counts[(src, dst)] += 1
        else:
            screen.domestic_arcs.append((seller, buyer))
    return screen
