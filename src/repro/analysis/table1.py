"""The Table-1 sweep harness.

Reproduces the paper's headline experiment: build the provincial TPIIN
once, overlay a fresh random trading network at each probability
setting, run detection, and report the same columns the paper tabulates.
The full 20-point paper sweep is
``run_table1(generate_province(), PAPER_TRADING_PROBABILITIES)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.metrics import Table1Row, compute_table1_row
from repro.analysis.reporting import render_table
from repro.datagen.config import PAPER_TRADING_PROBABILITIES
from repro.datagen.province import ProvincialDataset
from repro.mining.detector import detect

__all__ = ["Table1Result", "run_table1", "PAPER_TABLE1"]


@dataclass
class Table1Result:
    """All rows of a sweep plus wall-clock accounting."""

    rows: list[Table1Row] = field(default_factory=list)
    seconds_per_row: list[float] = field(default_factory=list)
    engine: str = "fast"

    def render(self) -> str:
        return render_table(Table1Row.HEADERS, [r.as_cells() for r in self.rows])

    def render_with_paper(self) -> str:
        """Side-by-side with the paper's counts where a row matches."""
        headers = [
            "p(trade)",
            "complex (paper)",
            "complex (ours)",
            "simple (paper)",
            "simple (ours)",
            "sus trades (paper)",
            "sus trades (ours)",
            "sus % (paper)",
            "sus % (ours)",
        ]
        rows = []
        for row in self.rows:
            paper = PAPER_TABLE1.get(round(row.trading_probability, 3))
            if paper is None:
                continue
            rows.append(
                [
                    f"{row.trading_probability:.3f}",
                    paper[1],
                    row.complex_groups,
                    paper[2],
                    row.simple_groups,
                    paper[3],
                    row.suspicious_trades,
                    f"{paper[5]:.4f}",
                    f"{row.suspicious_percentage:.4f}",
                ]
            )
        return render_table(headers, rows)


def run_table1(
    dataset: ProvincialDataset,
    probabilities: Sequence[float] = PAPER_TRADING_PROBABILITIES,
    *,
    engine: str = "fast",
    collect_groups: bool = False,
    verify_against_oracle: bool = True,
) -> Table1Result:
    """Run the sweep and return the assembled table.

    The antecedent network is fused once; each probability overlays its
    own seeded trading network (matching the paper's "twenty trading
    networks randomly generated").  ``engine`` selects the detector; the
    fast engine with ``collect_groups=False`` keeps the densest settings
    within a small memory budget.
    """
    base = dataset.antecedent_tpiin()
    result = Table1Result(engine=engine)
    for probability in probabilities:
        started = time.perf_counter()
        tpiin = dataset.overlay_trading(base, probability)
        detection = detect(tpiin, engine=engine, collect_groups=collect_groups)
        row = compute_table1_row(
            tpiin,
            detection,
            trading_probability=probability,
            check_oracle=verify_against_oracle,
        )
        result.rows.append(row)
        result.seconds_per_row.append(time.perf_counter() - started)
    return result


#: The paper's Table 1, keyed by trading probability:
#: (avg degree, complex groups, simple groups, suspicious trades,
#:  total trades, suspicious percentage).
PAPER_TABLE1: dict[float, tuple[float, int, int, int, int, float]] = {
    0.002: (3.981, 7252, 1507, 611, 11939, 5.1177),
    0.003: (5.275, 11506, 2460, 881, 17869, 4.9247),
    0.004: (6.628, 16021, 3390, 1288, 24069, 5.3513),
    0.005: (7.941, 19375, 3977, 1573, 30094, 5.2270),
    0.006: (9.240, 23071, 4864, 1839, 36036, 5.1032),
    0.008: (11.847, 30745, 6287, 2445, 47978, 5.0961),
    0.010: (14.491, 36702, 7881, 2991, 60117, 4.9753),
    0.012: (17.163, 44148, 8989, 3619, 72310, 5.0048),
    0.014: (19.728, 51023, 10776, 4258, 84064, 5.0652),
    0.016: (22.424, 60777, 12680, 4895, 96403, 5.0776),
    0.018: (24.965, 67614, 13997, 5514, 108045, 5.1034),
    0.020: (27.522, 75875, 16103, 6012, 119759, 5.0201),
    0.030: (40.748, 111885, 23328, 9122, 180401, 5.0565),
    0.040: (53.793, 149795, 31123, 12126, 240190, 5.0485),
    0.050: (66.827, 185405, 38501, 15089, 299898, 5.0314),
    0.060: (79.940, 226187, 47361, 18212, 359975, 5.0592),
    0.070: (93.011, 261367, 55088, 21214, 419914, 5.0520),
    0.080: (106.276, 298458, 62627, 24150, 480637, 5.0246),
    0.090: (119.554, 333271, 69844, 27129, 541489, 5.0101),
    0.100: (132.759, 372050, 78252, 30288, 602053, 5.0308),
}
