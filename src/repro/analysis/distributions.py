"""Distributional statistics over a detection result.

The paper reports aggregate counts (Table 1); a production audit team
also needs to know *where* the mass sits: how large the groups are, how
long the proof chains run, which antecedents dominate, and how groups
spread over subTPIINs.  These summaries feed the audit report writer
and the investigation UI.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.graph.digraph import Node
from repro.mining.detector import DetectionResult
from repro.mining.groups import GroupKind

__all__ = ["DetectionDistributions", "compute_distributions"]


@dataclass
class DetectionDistributions:
    """Histograms and top-k lists summarizing one detection run."""

    group_size_histogram: Counter[int] = field(default_factory=Counter)
    trail_length_histogram: Counter[int] = field(default_factory=Counter)
    groups_per_arc_histogram: Counter[int] = field(default_factory=Counter)
    kind_counts: Counter[GroupKind] = field(default_factory=Counter)
    top_antecedents: list[tuple[Node, int]] = field(default_factory=list)
    top_arcs: list[tuple[tuple[Node, Node], int]] = field(default_factory=list)

    @property
    def max_group_size(self) -> int:
        return max(self.group_size_histogram, default=0)

    @property
    def mean_group_size(self) -> float:
        total = sum(self.group_size_histogram.values())
        if total == 0:
            return 0.0
        weighted = sum(size * n for size, n in self.group_size_histogram.items())
        return weighted / total

    @property
    def mean_groups_per_suspicious_arc(self) -> float:
        total_arcs = sum(self.groups_per_arc_histogram.values())
        if total_arcs == 0:
            return 0.0
        weighted = sum(
            n_groups * n for n_groups, n in self.groups_per_arc_histogram.items()
        )
        return weighted / total_arcs

    def render(self, *, top: int = 5) -> str:
        lines = [
            f"groups: {sum(self.group_size_histogram.values())} "
            f"(mean size {self.mean_group_size:.2f}, max {self.max_group_size})",
            f"mean groups per suspicious arc: "
            f"{self.mean_groups_per_suspicious_arc:.2f}",
            "group sizes: "
            + ", ".join(
                f"{size}:{count}"
                for size, count in sorted(self.group_size_histogram.items())
            ),
            "trail lengths: "
            + ", ".join(
                f"{length}:{count}"
                for length, count in sorted(self.trail_length_histogram.items())
            ),
            "kinds: "
            + ", ".join(
                f"{kind.value}:{count}" for kind, count in self.kind_counts.items()
            ),
        ]
        if self.top_antecedents:
            lines.append(
                "busiest antecedents: "
                + ", ".join(f"{a} ({n})" for a, n in self.top_antecedents[:top])
            )
        if self.top_arcs:
            lines.append(
                "most-certified arcs: "
                + ", ".join(
                    f"{s}->{b} ({n})" for (s, b), n in self.top_arcs[:top]
                )
            )
        return "\n".join(lines)


def compute_distributions(
    result: DetectionResult, *, top: int = 10
) -> DetectionDistributions:
    """Summarize ``result`` (requires a group-collecting run)."""
    dist = DetectionDistributions()
    per_arc: Counter[tuple[Node, Node]] = Counter()
    per_antecedent: Counter[Node] = Counter()
    for group in result.groups:
        dist.group_size_histogram[len(group.members)] += 1
        dist.trail_length_histogram[len(group.trading_trail)] += 1
        dist.trail_length_histogram[len(group.support_trail)] += 1
        dist.kind_counts[group.kind] += 1
        per_arc[group.trading_arc] += 1
        if group.kind is not GroupKind.SCS:
            per_antecedent[group.antecedent] += 1
    for count in per_arc.values():
        dist.groups_per_arc_histogram[count] += 1
    dist.top_antecedents = per_antecedent.most_common(top)
    dist.top_arcs = per_arc.most_common(top)
    return dist
