"""Plain-text table rendering used by every report in the package."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_number"]


def format_number(value: object) -> str:
    """Compact numeric formatting: thousands separators, trimmed floats."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value):,}"
        return f"{value:,.4f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    align_right: bool = True,
) -> str:
    """Render an aligned monospace table.

    >>> print(render_table(["a", "b"], [[1, 22], [333, 4]]))
      a   b
    ---  --
      1  22
    333   4
    """
    text_rows = [[format_number(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        if align_right:
            return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

    lines = [fmt(list(headers))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)
