"""CSV persistence for the paper's edge-list format.

Two plain CSV layouts:

* the **arc file** mirrors Algorithm 1's ``r x 3`` array — columns
  ``start,end,color`` with ``0`` = trading (black) and ``1`` = influence
  (blue), influence rows first;
* the optional **node file** carries ``node,color`` rows so isolated
  nodes and Person/Company colors survive a round trip.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.errors import SerializationError
from repro.fusion.tpiin import TPIIN
from repro.graph.edgelist import COLOR_INFLUENCE, COLOR_TRADING, EdgeList
from repro.model.colors import VColor

__all__ = [
    "write_edge_list_csv",
    "read_edge_list_csv",
    "write_tpiin_csv",
    "read_tpiin_csv",
]


def write_edge_list_csv(edge_list: EdgeList, path: str | Path) -> Path:
    """Write the arc rows (paper layout) to ``path``."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["start", "end", "color"])
        nodes = edge_list.nodes
        for tail_ix, head_ix, color in edge_list.array:
            writer.writerow([nodes[int(tail_ix)], nodes[int(head_ix)], int(color)])
    return path


def read_edge_list_csv(path: str | Path) -> EdgeList:
    """Read an arc CSV back into an :class:`EdgeList`."""
    path = Path(path)
    rows: list[tuple[str, str, int]] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["start", "end", "color"]:
            raise SerializationError(
                f"{path}: expected header 'start,end,color', got {header!r}"
            )
        for lineno, row in enumerate(reader, start=2):
            if len(row) != 3:
                raise SerializationError(f"{path}:{lineno}: expected 3 columns")
            try:
                color = int(row[2])
            except ValueError as exc:
                raise SerializationError(
                    f"{path}:{lineno}: color {row[2]!r} is not an integer"
                ) from exc
            if color not in (COLOR_TRADING, COLOR_INFLUENCE):
                raise SerializationError(f"{path}:{lineno}: unknown color {color}")
            rows.append((row[0], row[1], color))
    # Stable node indexing: first-seen order, influence block first is
    # preserved by sorting rows on color (influence=1 first) like the
    # paper's layout requires.
    rows.sort(key=lambda r: -r[2])
    index_of: dict[str, int] = {}
    for tail, head, _color in rows:
        for node in (tail, head):
            if node not in index_of:
                index_of[node] = len(index_of)
    import numpy as np

    array = np.array(
        [[index_of[t], index_of[h], c] for t, h, c in rows], dtype=np.int64
    ).reshape(len(rows), 3)
    return EdgeList(array, list(index_of))


def write_tpiin_csv(tpiin: TPIIN, arc_path: str | Path, node_path: str | Path) -> None:
    """Write a TPIIN as an arc CSV plus a node-color CSV."""
    write_edge_list_csv(tpiin.to_edge_list(), arc_path)
    node_path = Path(node_path)
    with node_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["node", "color"])
        for node in tpiin.graph.nodes():
            color = tpiin.graph.node_color(node)
            writer.writerow([node, getattr(color, "value", color)])


def read_tpiin_csv(arc_path: str | Path, node_path: str | Path) -> TPIIN:
    """Rebuild a TPIIN from the two CSV files."""
    edge_list = read_edge_list_csv(arc_path)
    node_path = Path(node_path)
    colors: dict[str, VColor] = {}
    with node_path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["node", "color"]:
            raise SerializationError(
                f"{node_path}: expected header 'node,color', got {header!r}"
            )
        for lineno, row in enumerate(reader, start=2):
            if len(row) != 2:
                raise SerializationError(f"{node_path}:{lineno}: expected 2 columns")
            try:
                colors[row[0]] = VColor(row[1])
            except ValueError as exc:
                raise SerializationError(
                    f"{node_path}:{lineno}: unknown node color {row[1]!r}"
                ) from exc
    tpiin = TPIIN.from_edge_list(edge_list, node_colors=colors)
    for node, color in colors.items():
        if not tpiin.graph.has_node(node):
            tpiin.graph.add_node(node, color)
    return tpiin
