"""On-disk formats: edge-list CSV, result files, GraphML and DOT."""

from repro.io.bundle_io import read_tpiin_bundle, write_tpiin_bundle
from repro.io.dot import tpiin_to_dot, write_tpiin_dot
from repro.io.edge_list_io import (
    read_edge_list_csv,
    read_tpiin_csv,
    write_edge_list_csv,
    write_tpiin_csv,
)
from repro.io.graphml import write_graphml, write_ungraph_graphml
from repro.io.registry_io import (
    RegistryBundle,
    load_registry_csvs,
    write_registry_csvs,
)
from repro.io.svg import tpiin_to_svg, write_tpiin_svg
from repro.io.results_io import (
    detection_to_dict,
    group_from_dict,
    group_to_dict,
    read_detection_json,
    write_detection_json,
    write_sus_files,
)

__all__ = [
    "RegistryBundle",
    "detection_to_dict",
    "group_from_dict",
    "group_to_dict",
    "load_registry_csvs",
    "read_detection_json",
    "read_tpiin_bundle",
    "read_edge_list_csv",
    "read_tpiin_csv",
    "tpiin_to_dot",
    "tpiin_to_svg",
    "write_detection_json",
    "write_edge_list_csv",
    "write_graphml",
    "write_registry_csvs",
    "write_sus_files",
    "write_tpiin_bundle",
    "write_tpiin_csv",
    "write_tpiin_dot",
    "write_tpiin_svg",
    "write_ungraph_graphml",
]
