"""Detection-result persistence: the paper's output files plus JSON.

Algorithm 1 emits per-subTPIIN files ``susGroup(i)`` (all suspicious
groups mined from the i-th subTPIIN) and ``susTrade(i)`` (the suspicious
trading arcs).  :func:`write_sus_files` reproduces that layout for the
faithful engine and writes a single aggregated pair for engines that do
not track per-subTPIIN provenance.  :func:`write_detection_json` /
:func:`read_detection_json` round-trip the full result for downstream
tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import SerializationError
from repro.mining.groups import GroupKind, SuspiciousGroup

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mining.detector import DetectionResult

__all__ = [
    "detection_to_dict",
    "write_sus_files",
    "write_detection_json",
    "read_detection_json",
    "group_to_dict",
    "group_from_dict",
]


def write_sus_files(result: "DetectionResult", directory: Path) -> list[Path]:
    """Write ``susGroup(i)`` / ``susTrade(i)`` files; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    def dump(index: str, groups: list[SuspiciousGroup]) -> None:
        group_path = directory / f"susGroup({index}).txt"
        trade_path = directory / f"susTrade({index}).txt"
        with group_path.open("w") as handle:
            for group in groups:
                handle.write(group.render() + "\n")
        with trade_path.open("w") as handle:
            for tail, head in sorted(
                {g.trading_arc for g in groups}, key=lambda a: (str(a[0]), str(a[1]))
            ):
                handle.write(f"{tail} -> {head}\n")
        written.extend([group_path, trade_path])

    if result.sub_results:
        for sub in result.sub_results:
            if sub.groups:
                dump(str(sub.index), sub.groups)
        extras = [
            g for g in result.groups if g.kind in (GroupKind.SCS,)
        ]
        if extras:
            dump("scs", extras)
    else:
        dump("all", result.groups)
    return written


def group_to_dict(group: SuspiciousGroup) -> dict[str, Any]:
    return {
        "trading_trail": [str(n) for n in group.trading_trail],
        "support_trail": [str(n) for n in group.support_trail],
        "kind": group.kind.value,
    }


def group_from_dict(payload: dict[str, Any]) -> SuspiciousGroup:
    try:
        trading = payload["trading_trail"]
        support = payload["support_trail"]
        if not isinstance(trading, (list, tuple)) or not isinstance(
            support, (list, tuple)
        ):
            raise SerializationError(f"group trails must be lists: {payload!r}")
        return SuspiciousGroup(
            trading_trail=tuple(trading),
            support_trail=tuple(support),
            kind=GroupKind(payload["kind"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed group payload: {payload!r}") from exc


def detection_to_dict(result: "DetectionResult") -> dict[str, Any]:
    """The JSON-ready payload for a detection result.

    Shared by :func:`write_detection_json` and the serving daemon's
    ``GET /result`` endpoint so the on-disk and over-the-wire formats
    cannot drift.
    """
    return {
        "detector": result.detector,
        "detector_version": result.detector_version,
        "engine": result.engine,
        "truncated": result.truncated,
        "subtpiin_count": result.subtpiin_count,
        "total_trading_arcs": result.total_trading_arcs,
        "cross_component_trades": result.cross_component_trades,
        "pattern_trail_count": result.pattern_trail_count,
        "simple_group_count": result.simple_group_count,
        "complex_group_count": result.complex_group_count,
        "suspicious_trading_arcs": sorted(
            [str(a), str(b)] for a, b in result.suspicious_trading_arcs
        ),
        "groups": [group_to_dict(g) for g in result.groups],
    }


def write_detection_json(result: "DetectionResult", path: str | Path) -> Path:
    """Serialize a detection result (groups, counts, metadata) as JSON."""
    path = Path(path)
    path.write_text(json.dumps(detection_to_dict(result), indent=2))
    return path


def read_detection_json(path: str | Path) -> dict[str, Any]:
    """Load a detection JSON back into a plain dictionary.

    Groups are revived as :class:`SuspiciousGroup` under the ``groups``
    key; the remaining entries stay primitive.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} is not valid JSON") from exc
    if not isinstance(payload, dict):
        raise SerializationError(f"{path}: expected a JSON object at top level")
    groups = payload.get("groups", [])
    arcs = payload.get("suspicious_trading_arcs", [])
    if not isinstance(groups, list) or not isinstance(arcs, list):
        raise SerializationError(f"{path}: groups/arcs must be JSON arrays")
    payload["groups"] = [group_from_dict(g) for g in groups]
    try:
        payload["suspicious_trading_arcs"] = {(a, b) for a, b in arcs}
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"{path}: malformed arc entries") from exc
    return payload
