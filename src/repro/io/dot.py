"""Graphviz DOT export following the paper's figure conventions.

In the experiment figures each red node is a company, each black node a
person, each blue arc an influence relationship and each black arc a
trading relationship (Section 5.1).  :func:`tpiin_to_dot` emits exactly
that styling, so ``dot -Tsvg`` reproduces the look of Figs. 6-8 and 16.
"""

from __future__ import annotations

from pathlib import Path

from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import Node
from repro.model.colors import EColor, VColor

__all__ = ["tpiin_to_dot", "write_tpiin_dot"]


def _quote(value: object) -> str:
    return '"' + str(value).replace('"', r"\"") + '"'


def tpiin_to_dot(
    tpiin: TPIIN, *, highlight_arcs: set[tuple[Node, Node]] | None = None
) -> str:
    """Render a TPIIN as a DOT digraph string.

    ``highlight_arcs`` draws the given trading arcs bold red — handy for
    marking the suspicious trades a detection run found.
    """
    highlight = highlight_arcs or set()
    lines = ["digraph TPIIN {", "  rankdir=LR;", "  node [style=filled];"]
    for node in tpiin.graph.nodes():
        color = tpiin.graph.node_color(node)
        if color == VColor.COMPANY:
            lines.append(
                f"  {_quote(node)} [shape=box, fillcolor=salmon, color=red];"
            )
        else:
            lines.append(
                f"  {_quote(node)} [shape=ellipse, fillcolor=gray85, color=black];"
            )
    for tail, head, color in tpiin.graph.arcs():
        if color == EColor.INFLUENCE:
            lines.append(f"  {_quote(tail)} -> {_quote(head)} [color=blue];")
        elif (tail, head) in highlight:
            lines.append(
                f"  {_quote(tail)} -> {_quote(head)} [color=red, penwidth=2.5];"
            )
        else:
            lines.append(f"  {_quote(tail)} -> {_quote(head)} [color=black];")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_tpiin_dot(
    tpiin: TPIIN,
    path: str | Path,
    *,
    highlight_arcs: set[tuple[Node, Node]] | None = None,
) -> Path:
    path = Path(path)
    path.write_text(tpiin_to_dot(tpiin, highlight_arcs=highlight_arcs))
    return path
