"""GraphML export for rendering the paper's network figures.

Figs. 11-16 are Gephi renderings of G1/G2/G3/G123/G4 and the TPIIN;
this module writes :class:`~repro.graph.digraph.DiGraph` /
:class:`~repro.graph.digraph.UnGraph` instances as GraphML that Gephi
(or yEd, Cytoscape, networkx) can open, carrying the node and edge
colors as attributes.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape, quoteattr

from repro.graph.digraph import DiGraph, UnGraph

__all__ = ["write_graphml", "write_ungraph_graphml"]

_HEADER = """<?xml version="1.0" encoding="UTF-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key id="ncolor" for="node" attr.name="color" attr.type="string"/>
  <key id="ecolor" for="edge" attr.name="color" attr.type="string"/>
"""


def _color_str(value: object) -> str:
    if value is None:
        return ""
    return escape(str(getattr(value, "value", value)))


def write_graphml(graph: DiGraph, path: str | Path) -> Path:
    """Write a directed colored graph as GraphML."""
    path = Path(path)
    lines = [_HEADER, '  <graph edgedefault="directed">\n']
    for node in graph.nodes():
        node_id = quoteattr(str(node))
        color = _color_str(graph.node_color(node))
        lines.append(
            f'    <node id={node_id}><data key="ncolor">{color}</data></node>\n'
        )
    for i, (tail, head, color) in enumerate(graph.arcs()):
        lines.append(
            f'    <edge id="e{i}" source={quoteattr(str(tail))} '
            f'target={quoteattr(str(head))}>'
            f'<data key="ecolor">{_color_str(color)}</data></edge>\n'
        )
    lines.append("  </graph>\n</graphml>\n")
    path.write_text("".join(lines))
    return path


def write_ungraph_graphml(graph: UnGraph, path: str | Path) -> Path:
    """Write an undirected colored graph (e.g. *G1*) as GraphML."""
    path = Path(path)
    lines = [_HEADER, '  <graph edgedefault="undirected">\n']
    for node in graph.nodes():
        node_id = quoteattr(str(node))
        color = _color_str(graph.node_color(node))
        lines.append(
            f'    <node id={node_id}><data key="ncolor">{color}</data></node>\n'
        )
    for i, (u, v, color) in enumerate(graph.edges()):
        lines.append(
            f'    <edge id="e{i}" source={quoteattr(str(u))} '
            f'target={quoteattr(str(v))}>'
            f'<data key="ecolor">{_color_str(color)}</data></edge>\n'
        )
    lines.append("  </graph>\n</graphml>\n")
    path.write_text("".join(lines))
    return path
