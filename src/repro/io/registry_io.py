"""Registry-style CSV ingestion (the paper's information sources).

Fig. 4 feeds the TPIIN build from registry extracts: shareholding
structures and director lists from the CSRC, kinship from the household
registration department (HRDPSC), and trading relationships from the
provincial tax offices (PTAOs).  This module defines a three-file CSV
interchange format shaped like those extracts and loads it into the
homogeneous source graphs, the entity registry and the shareholding
register:

``persons.csv``
    ``person_id,name,positions`` — positions is a ``|``-separated subset
    of CB/CEO/S/D (the raw 15-combination vocabulary; the role algebra
    reduces it).
``companies.csv``
    ``company_id,name,industry,region,scale``.
``relations.csv``
    ``kind,source,target,value`` where kind is one of ``kinship``,
    ``interlocking``, ``legal_person``, ``ceo``, ``chairman``,
    ``director``, ``investment`` (value = stake fraction) and
    ``trading``.

:func:`load_registry_csvs` reads a directory; :func:`write_registry_csvs`
exports a generated provincial dataset in the same format, and the two
round-trip (tested).
"""

from __future__ import annotations

import csv
import json
from collections.abc import Container
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import SerializationError
from repro.model.colors import AffiliationKind, InfluenceKind, InterdependenceKind
from repro.model.entities import Company, EntityRegistry, Person
from repro.model.homogeneous import (
    AffiliationGraph,
    InfluenceGraph,
    InterdependenceGraph,
    InvestmentGraph,
    TradingGraph,
)
from repro.fusion.pipeline import fuse
from repro.model.roles import Role
from repro.weights.ownership import ShareholdingRegister

if TYPE_CHECKING:
    from repro.datagen.province import ProvincialDataset
    from repro.fusion.pipeline import FusionResult

__all__ = [
    "DEFAULT_INVESTMENT_THRESHOLD",
    "ArcLine",
    "ArcLineReject",
    "RegistryBundle",
    "load_registry_csvs",
    "parse_arc_ndjson",
    "write_registry_csvs",
]

_INFLUENCE_KINDS = {
    "legal_person": InfluenceKind.CEO_OF,
    "ceo": InfluenceKind.CEO_OF,
    "chairman": InfluenceKind.CB_OF,
    "director": InfluenceKind.D_OF,
    "executive_director": InfluenceKind.CEO_AND_D_OF,
}

#: Default major-shareholding threshold turning stakes into GI arcs.
DEFAULT_INVESTMENT_THRESHOLD = 0.5

#: Trading-arc mutation vocabulary of the NDJSON bulk-ingest format
#: (mirrors the service WAL's operations; io sits below service, so the
#: strings are duplicated here rather than imported upward).
_ARC_OPS = frozenset({"add", "remove"})


@dataclass(frozen=True, slots=True)
class ArcLine:
    """One accepted line of an NDJSON trading-arc batch.

    ``index`` is the 0-based line number in the request body, preserved
    so per-line reports line up with what the client sent.
    """

    index: int
    op: str
    seller: str
    buyer: str


@dataclass(frozen=True, slots=True)
class ArcLineReject:
    """One rejected line of an NDJSON batch, with the reason."""

    index: int
    error: str


def parse_arc_ndjson(text: str) -> tuple[list[ArcLine], list[ArcLineReject]]:
    """Parse and normalize an NDJSON trading-arc batch body.

    One JSON object per line: ``{"op": "add"|"remove", "seller": S,
    "buyer": B}``; ``op`` defaults to ``add``; endpoint ids are
    whitespace-stripped.  Blank lines are skipped.  Malformed lines are
    *rejected individually* — registry extracts arrive dirty, so one bad
    row must not void the batch — and reported with their line index so
    the caller can answer a per-line accept/reject report.
    """
    accepted: list[ArcLine] = []
    rejected: list[ArcLineReject] = []
    for index, line in enumerate(text.split("\n")):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            rejected.append(ArcLineReject(index, f"not valid JSON: {exc}"))
            continue
        if not isinstance(payload, dict):
            rejected.append(ArcLineReject(index, "expected a JSON object"))
            continue
        op = payload.get("op", "add")
        if op not in _ARC_OPS:
            rejected.append(
                ArcLineReject(index, f"op must be 'add' or 'remove', got {op!r}")
            )
            continue
        seller = payload.get("seller")
        buyer = payload.get("buyer")
        if not isinstance(seller, str) or not isinstance(buyer, str):
            rejected.append(
                ArcLineReject(index, "seller and buyer must be strings")
            )
            continue
        seller = seller.strip()
        buyer = buyer.strip()
        if not seller or not buyer:
            rejected.append(
                ArcLineReject(index, "seller and buyer must be non-empty")
            )
            continue
        accepted.append(ArcLine(index=index, op=op, seller=seller, buyer=buyer))
    return accepted, rejected


@dataclass
class RegistryBundle:
    """Everything loaded from one registry extract directory."""

    registry: EntityRegistry
    interdependence: InterdependenceGraph
    influence: InfluenceGraph
    investment: InvestmentGraph
    trading: TradingGraph
    shareholdings: ShareholdingRegister = field(default_factory=ShareholdingRegister)
    affiliations: AffiliationGraph = field(default_factory=AffiliationGraph)

    def fuse(
        self,
        *,
        registry: EntityRegistry | None = None,
        affiliations: AffiliationGraph | None = None,
        validate_inputs: bool = True,
        keep_intermediates: bool = False,
    ) -> "FusionResult":
        """Convenience: run the fusion pipeline over the loaded graphs."""
        if registry is None:
            registry = self.registry
        if affiliations is None and self.affiliations.number_of_arcs:
            affiliations = self.affiliations
        return fuse(
            self.interdependence,
            self.influence,
            self.investment,
            self.trading,
            affiliations=affiliations,
            registry=registry,
            validate_inputs=validate_inputs,
            keep_intermediates=keep_intermediates,
        )


def _read_rows(path: Path, expected_header: list[str]) -> list[list[str]]:
    if not path.exists():
        raise SerializationError(f"missing registry file {path}")
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != expected_header:
            raise SerializationError(
                f"{path}: expected header {','.join(expected_header)!r}, "
                f"got {header!r}"
            )
        rows = []
        for lineno, row in enumerate(reader, start=2):
            if not row or all(not cell for cell in row):
                continue
            if len(row) != len(expected_header):
                raise SerializationError(
                    f"{path}:{lineno}: expected {len(expected_header)} columns"
                )
            rows.append(row)
        return rows


def load_registry_csvs(
    directory: str | Path,
    *,
    investment_threshold: float = DEFAULT_INVESTMENT_THRESHOLD,
) -> RegistryBundle:
    """Load ``persons.csv``, ``companies.csv`` and ``relations.csv``.

    Investment relations populate the shareholding register; direct
    company stakes at or above ``investment_threshold`` also become *GI*
    arcs (the paper's "major shareholding" relation).
    """
    directory = Path(directory)
    registry = EntityRegistry()
    g1 = InterdependenceGraph()
    g2 = InfluenceGraph()
    gi = InvestmentGraph()
    g4 = TradingGraph()
    affiliations = AffiliationGraph()
    shareholdings = ShareholdingRegister()

    person_rows = _read_rows(
        directory / "persons.csv", ["person_id", "name", "positions"]
    )
    pending_persons: dict[str, tuple[str, Role]] = {}
    for person_id, name, positions in person_rows:
        tokens = [t for t in positions.split("|") if t]
        if not tokens:
            raise SerializationError(
                f"person {person_id}: at least one position required"
            )
        try:
            role = Role.from_positions(*tokens)
        except ValueError as exc:
            raise SerializationError(f"person {person_id}: {exc}") from exc
        pending_persons[person_id] = (name, role)
        g1.add_person(person_id)
        g2.add_person(person_id)

    company_rows = _read_rows(
        directory / "companies.csv",
        ["company_id", "name", "industry", "region", "scale"],
    )
    for company_id, name, industry, region, scale in company_rows:
        registry.add_company(
            Company(
                company_id=company_id,
                name=name,
                industry=industry or "general",
                region=region or "domestic",
                scale=scale or "small",
            )
        )
        g2.add_company(company_id)
        gi.add_company(company_id)
        g4.add_company(company_id)

    relation_rows = _read_rows(
        directory / "relations.csv", ["kind", "source", "target", "value"]
    )
    legal_person_of: dict[str, list[str]] = {}
    for lineno, (kind, source, target, value) in enumerate(relation_rows, start=2):
        if kind in ("kinship", "interlocking"):
            _require(source, pending_persons, "relations.csv", lineno, "person")
            _require(target, pending_persons, "relations.csv", lineno, "person")
            g1.add_link(source, target, InterdependenceKind(kind))
        elif kind in _INFLUENCE_KINDS:
            _require(source, pending_persons, "relations.csv", lineno, "person")
            _require(target, registry.companies, "relations.csv", lineno, "company")
            g2.add_influence(
                source,
                target,
                _INFLUENCE_KINDS[kind],
                legal_person=(kind == "legal_person"),
            )
            if kind == "legal_person":
                legal_person_of.setdefault(source, []).append(target)
        elif kind == "investment":
            _require(target, registry.companies, "relations.csv", lineno, "company")
            if value:
                # Fractional stake: recorded in the register; becomes a
                # GI arc only at/above the major-shareholding threshold.
                try:
                    fraction = float(value)
                except ValueError as exc:
                    raise SerializationError(
                        f"relations.csv:{lineno}: bad stake fraction {value!r}"
                    ) from exc
                shareholdings.add_stake(source, target, fraction)
                if source in registry.companies and fraction >= investment_threshold:
                    gi.add_investment(source, target)
            else:
                # Declared major shareholding with no fraction on file:
                # exactly the paper's GI relation.
                _require(
                    source, registry.companies, "relations.csv", lineno, "company"
                )
                gi.add_investment(source, target)
        elif kind in {k.value for k in AffiliationKind}:
            _require(source, registry.companies, "relations.csv", lineno, "company")
            _require(target, registry.companies, "relations.csv", lineno, "company")
            affiliations.add_affiliation(source, target, AffiliationKind(kind))
        elif kind == "trading":
            _require(source, registry.companies, "relations.csv", lineno, "company")
            _require(target, registry.companies, "relations.csv", lineno, "company")
            g4.add_trade(source, target)
        else:
            raise SerializationError(
                f"relations.csv:{lineno}: unknown relation kind {kind!r}"
            )

    for person_id, (name, role) in pending_persons.items():
        registry.add_person(
            Person(
                person_id=person_id,
                name=name,
                role=role,
                legal_person_of=tuple(sorted(legal_person_of.get(person_id, ()))),
            )
        )
    return RegistryBundle(
        registry=registry,
        interdependence=g1,
        influence=g2,
        investment=gi,
        trading=g4,
        shareholdings=shareholdings,
        affiliations=affiliations,
    )


def _require(
    node: str, known: Container[str], filename: str, lineno: int, expected: str
) -> None:
    if node not in known:
        raise SerializationError(
            f"{filename}:{lineno}: {expected} {node!r} is not declared"
        )


def write_registry_csvs(
    dataset: "ProvincialDataset",
    directory: str | Path,
    *,
    trading_probability: float | None = None,
) -> Path:
    """Export a :class:`~repro.datagen.province.ProvincialDataset`.

    ``trading_probability`` adds a sampled trading network; ``None``
    writes relationship data only.  Returns the directory.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with (directory / "persons.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["person_id", "name", "positions"])
        for person in dataset.registry.persons.values():
            positions = "|".join(
                name
                for name, member in (("CEO", Role.CEO), ("D", Role.D), ("CB", Role.CB))
                if person.role & member
            )
            writer.writerow([person.person_id, person.name, positions])

    with (directory / "companies.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["company_id", "name", "industry", "region", "scale"])
        for company in dataset.registry.companies.values():
            writer.writerow(
                [
                    company.company_id,
                    company.name,
                    company.industry,
                    company.region,
                    company.scale,
                ]
            )

    with (directory / "relations.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["kind", "source", "target", "value"])
        for u, v, kind in dataset.interdependence.graph.edges():
            writer.writerow([kind.value, u, v, ""])
        lp_map = dataset.influence.legal_person_map
        for person, company, _kind in dataset.influence.influences():
            if lp_map.get(company) == person:
                writer.writerow(["legal_person", person, company, ""])
            else:
                writer.writerow(["director", person, company, ""])
        for investor, investee, _kind in dataset.investment.arcs():
            # The generator records major shareholdings without stake
            # fractions; an empty value keeps that meaning on reload.
            writer.writerow(["investment", investor, investee, ""])
        if trading_probability is not None:
            trading = dataset.trading_graph(trading_probability)
            for seller, buyer, _kind in trading.arcs():
                writer.writerow(["trading", seller, buyer, ""])
    return directory
