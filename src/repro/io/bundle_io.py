"""Single-file JSON persistence of a fully fused TPIIN.

The CSV formats cover the graph itself; a production deployment also
needs the fusion *by-products* — contraction provenance (``node_map``),
the saved strongly connected investment subgraphs, intra-SCS trades and
per-arc relationship labels — so that a TPIIN fused once (expensive,
against live registries) can be mined, explained and investigated many
times elsewhere.  :func:`write_tpiin_bundle` / :func:`read_tpiin_bundle`
round-trip all of it through one JSON document.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from pathlib import Path
from typing import Any

from repro.errors import SerializationError
from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import DiGraph
from repro.model.colors import EColor, VColor

__all__ = ["write_tpiin_bundle", "read_tpiin_bundle"]

_BUNDLE_FORMAT_VERSION = 1


def _graph_payload(graph: DiGraph) -> dict[str, Any]:
    return {
        "nodes": [
            [str(node), getattr(graph.node_color(node), "value", graph.node_color(node))]
            for node in graph.nodes()
        ],
        "arcs": [
            [str(tail), str(head), getattr(color, "value", str(color))]
            for tail, head, color in graph.arcs()
        ],
    }


def _graph_from_payload(
    payload: dict[str, Any], *, color_lookup: Callable[[str], object]
) -> DiGraph:
    graph = DiGraph()
    try:
        for node, color in payload["nodes"]:
            graph.add_node(node, VColor(color) if color else None)
        for tail, head, color in payload["arcs"]:
            graph.add_arc(tail, head, color_lookup(color))
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed graph payload: {exc}") from exc
    return graph


def write_tpiin_bundle(tpiin: TPIIN, path: str | Path) -> Path:
    """Serialize the TPIIN and its fusion by-products as one JSON file."""
    path = Path(path)
    payload = {
        "format_version": _BUNDLE_FORMAT_VERSION,
        "graph": _graph_payload(tpiin.graph),
        "node_map": {str(k): str(v) for k, v in tpiin.node_map.items()},
        "intra_scs_trades": [[str(a), str(b)] for a, b in tpiin.intra_scs_trades],
        "scs_subgraphs": {
            str(scs_id): _graph_payload(subgraph)
            for scs_id, subgraph in tpiin.scs_subgraphs.items()
        },
        "arc_provenance": [
            [str(t), str(h), sorted(labels)]
            for (t, h), labels in tpiin.arc_provenance.items()
        ],
    }
    path.write_text(json.dumps(payload, indent=1))
    return path


def read_tpiin_bundle(path: str | Path) -> TPIIN:
    """Load a bundle back into a validated :class:`TPIIN`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} is not valid JSON") from exc
    if not isinstance(payload, dict):
        raise SerializationError(f"{path}: expected a JSON object")
    version = payload.get("format_version")
    if version != _BUNDLE_FORMAT_VERSION:
        raise SerializationError(
            f"{path}: unsupported bundle format version {version!r}"
        )

    def fused_color(label: str) -> EColor:
        return EColor(label)

    try:
        graph = _graph_from_payload(payload["graph"], color_lookup=fused_color)
        node_map = {str(k): str(v) for k, v in payload.get("node_map", {}).items()}
        intra = [
            (str(a), str(b)) for a, b in payload.get("intra_scs_trades", [])
        ]
        scs = {
            str(scs_id): _graph_from_payload(sub, color_lookup=lambda c: c)
            for scs_id, sub in payload.get("scs_subgraphs", {}).items()
        }
        provenance = {
            (str(t), str(h)): frozenset(labels)
            for t, h, labels in payload.get("arc_provenance", [])
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"{path}: malformed bundle: {exc}") from exc

    tpiin = TPIIN(
        graph=graph,
        node_map=node_map,
        intra_scs_trades=intra,
        scs_subgraphs=scs,
        arc_provenance=provenance,
    )
    tpiin.validate()
    return tpiin
