"""Dependency-free SVG rendering of TPIINs (the paper's figure style).

Renders small-to-medium TPIINs as standalone SVG documents following
the conventions of Figs. 6-8 and 16: persons are grey ellipses,
companies red boxes, influence arcs blue, trading arcs black (optionally
highlighted red for detected suspicious trades).

Layout is a simple layered (Sugiyama-lite) scheme: nodes take the layer
of their longest influence path from a root, one barycenter pass per
layer reduces crossings, trading arcs are drawn as curves.  No plotting
library is needed — the output is plain XML.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

from repro.fusion.tpiin import TPIIN
from repro.graph.dag import topological_order
from repro.graph.digraph import Node
from repro.model.colors import EColor, VColor

__all__ = ["tpiin_to_svg", "write_tpiin_svg"]

_NODE_W = 92
_NODE_H = 30
_X_GAP = 26
_Y_GAP = 72
_MARGIN = 30


def _layout(tpiin: TPIIN) -> dict[Node, tuple[float, float]]:
    """Layered positions: layer = longest influence path from a root."""
    graph = tpiin.graph
    layer: dict[Node, int] = {}
    for node in topological_order(graph, EColor.INFLUENCE):
        incoming = [
            layer[prev] + 1
            for prev in graph.predecessors(node, EColor.INFLUENCE)
        ]
        layer[node] = max(incoming, default=0)

    layers: dict[int, list[Node]] = {}
    for node, depth in layer.items():
        layers.setdefault(depth, []).append(node)
    for nodes in layers.values():
        nodes.sort(key=str)

    positions: dict[Node, tuple[float, float]] = {}
    for depth in sorted(layers):
        nodes = layers[depth]
        if depth > 0:
            # One barycenter pass: order by mean predecessor x.
            def barycenter(node: Node) -> float:
                xs = [
                    positions[p][0]
                    for p in tpiin.graph.predecessors(node, EColor.INFLUENCE)
                    if p in positions
                ]
                return sum(xs) / len(xs) if xs else float(len(nodes))

            nodes.sort(key=lambda n: (barycenter(n), str(n)))
        for i, node in enumerate(nodes):
            x = _MARGIN + i * (_NODE_W + _X_GAP) + _NODE_W / 2
            y = _MARGIN + depth * (_NODE_H + _Y_GAP) + _NODE_H / 2
            positions[node] = (x, y)
    return positions


def _arrow(
    x1: float, y1: float, x2: float, y2: float, color: str, *, curve: bool, width: float
) -> str:
    if curve:
        # Quadratic curve bowing sideways, so trading arcs are
        # distinguishable from the straight influence arcs.
        mx, my = (x1 + x2) / 2, (y1 + y2) / 2
        dx, dy = x2 - x1, y2 - y1
        norm = max((dx * dx + dy * dy) ** 0.5, 1.0)
        off = 26.0
        cx, cy = mx - dy / norm * off, my + dx / norm * off
        path = f"M {x1:.1f} {y1:.1f} Q {cx:.1f} {cy:.1f} {x2:.1f} {y2:.1f}"
        return (
            f'<path d="{path}" fill="none" stroke="{color}" '
            f'stroke-width="{width}" marker-end="url(#arrow-{color})"/>'
        )
    return (
        f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
        f'stroke="{color}" stroke-width="{width}" '
        f'marker-end="url(#arrow-{color})"/>'
    )


def _shrink(
    x1: float, y1: float, x2: float, y2: float, margin: float = 22.0
) -> tuple[float, float, float, float]:
    """Pull the endpoint back so arrowheads sit outside node shapes."""
    dx, dy = x2 - x1, y2 - y1
    norm = max((dx * dx + dy * dy) ** 0.5, 1.0)
    return (
        x1 + dx / norm * margin,
        y1 + dy / norm * margin,
        x2 - dx / norm * margin,
        y2 - dy / norm * margin,
    )


def tpiin_to_svg(
    tpiin: TPIIN,
    *,
    highlight_arcs: set[tuple[Node, Node]] | None = None,
    title: str | None = None,
) -> str:
    """Render ``tpiin`` as a standalone SVG document string."""
    highlight = highlight_arcs or set()
    positions = _layout(tpiin)
    width = max(x for x, _y in positions.values()) + _NODE_W / 2 + _MARGIN
    height = max(y for _x, y in positions.values()) + _NODE_H / 2 + _MARGIN

    defs = "".join(
        f'<marker id="arrow-{color}" viewBox="0 0 10 10" refX="9" refY="5" '
        f'markerWidth="7" markerHeight="7" orient="auto-start-reverse">'
        f'<path d="M 0 0 L 10 5 L 0 10 z" fill="{color}"/></marker>'
        for color in ("blue", "black", "red")
    )
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f"<defs>{defs}</defs>",
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_MARGIN}" y="18" font-size="13" '
            f'font-family="sans-serif">{escape(title)}</text>'
        )

    for tail, head, color in tpiin.graph.arcs():
        x1, y1 = positions[tail]
        x2, y2 = positions[head]
        x1, y1, x2, y2 = _shrink(x1, y1, x2, y2)
        if color == EColor.INFLUENCE:
            parts.append(_arrow(x1, y1, x2, y2, "blue", curve=False, width=1.2))
        elif (tail, head) in highlight:
            parts.append(_arrow(x1, y1, x2, y2, "red", curve=True, width=2.4))
        else:
            parts.append(_arrow(x1, y1, x2, y2, "black", curve=True, width=1.2))

    for node, (x, y) in positions.items():
        label = escape(str(node))
        if len(label) > 14:
            label = label[:13] + "…"
        if tpiin.graph.node_color(node) == VColor.COMPANY:
            parts.append(
                f'<rect x="{x - _NODE_W / 2:.1f}" y="{y - _NODE_H / 2:.1f}" '
                f'width="{_NODE_W}" height="{_NODE_H}" rx="4" '
                f'fill="#f4a08c" stroke="#c03020"/>'
            )
        else:
            parts.append(
                f'<ellipse cx="{x:.1f}" cy="{y:.1f}" rx="{_NODE_W / 2}" '
                f'ry="{_NODE_H / 2}" fill="#e0e0e0" stroke="#404040"/>'
            )
        parts.append(
            f'<text x="{x:.1f}" y="{y + 4:.1f}" text-anchor="middle" '
            f'font-size="11" font-family="sans-serif">{label}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def write_tpiin_svg(
    tpiin: TPIIN,
    path: str | Path,
    *,
    highlight_arcs: set[tuple[Node, Node]] | None = None,
    title: str | None = None,
) -> Path:
    """Write :func:`tpiin_to_svg` output to ``path``."""
    path = Path(path)
    path.write_text(
        tpiin_to_svg(tpiin, highlight_arcs=highlight_arcs, title=title)
    )
    return path
