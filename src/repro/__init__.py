"""repro: reproduction of *Mining Suspicious Tax Evasion Groups in Big Data*.

The package implements the paper's two-phase tax-evasion detection
pipeline end to end:

* :mod:`repro.model` -- the colored network-based model (CNBM): persons,
  companies, roles, and the homogeneous source networks;
* :mod:`repro.fusion` -- multi-network fusion into the Taxpayer Interest
  Interacted Network (TPIIN);
* :mod:`repro.mining` -- the MSG-phase: patterns-tree construction,
  component-pattern matching and suspicious-group detection;
* :mod:`repro.ite` -- the ITE-phase: arm's-length-principle judgment on
  the transactions of suspicious groups;
* :mod:`repro.baseline` -- the global-traversal and subgraph-enumeration
  comparators;
* :mod:`repro.datagen` -- synthetic taxpayer networks, including the
  provincial-scale dataset behind Table 1 and the paper's case fixtures;
* :mod:`repro.analysis` -- Table-1 metrics, accuracy harness and
  per-company investigation;
* :mod:`repro.graph` -- the from-scratch graph substrate.

Quick start::

    from repro import TPIIN, detect

    tpiin = TPIIN.build(
        persons=["P1"],
        companies=["C1", "C2", "C3"],
        influence=[("P1", "C1"), ("P1", "C3"), ("C1", "C2")],
        trading=[("C2", "C3")],
    )
    result = detect(tpiin)
    for group in result.groups:
        print(group.render())
"""

from repro.fusion import TPIIN, fuse
from repro.mining import (  # reprolint: disable=R011  (deprecated alias stays exported)
    DetectionResult,
    DetectOptions,
    Engine,
    GroupKind,
    SuspiciousGroup,
    detect,
    fast_detect,
)

__version__ = "1.0.0"

__all__ = [
    "DetectOptions",
    "DetectionResult",
    "Engine",
    "GroupKind",
    "SuspiciousGroup",
    "TPIIN",
    "detect",
    "fast_detect",
    "fuse",
    "__version__",
]
