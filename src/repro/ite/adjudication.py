"""Per-transaction and per-company adjudication.

Combines the ALP methods of :mod:`repro.ite.alp` into a single verdict:
a transaction is an evasion finding when any applicable method flags it,
and its tax adjustment is the largest adjustment any method implies
(the TAO picks the method that best fits the facts; Cases 1-3 each used
a different one).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ite.alp import (
    Judgment,
    comparable_uncontrolled_price,
    cost_plus,
    resale_price,
    transactional_net_margin,
)
from repro.ite.transactions import (
    DEFAULT_PROFILES,
    IndustryProfile,
    Transaction,
)

__all__ = [
    "ENTERPRISE_INCOME_TAX_RATE",
    "CompanyVerdict",
    "TransactionVerdict",
    "adjudicate_transaction",
    "adjudicate_company",
]

#: Chinese enterprise income tax rate, used to turn taxable-income
#: adjustments into recovered tax.
ENTERPRISE_INCOME_TAX_RATE = 0.25


@dataclass(frozen=True, slots=True)
class TransactionVerdict:
    """Combined ALP outcome for one transaction."""

    transaction: Transaction
    judgments: tuple[Judgment, ...]
    flagged: bool
    adjustment: float

    @property
    def recovered_tax(self) -> float:
        return self.adjustment * ENTERPRISE_INCOME_TAX_RATE

    @property
    def methods_violated(self) -> tuple[str, ...]:
        return tuple(j.method for j in self.judgments if j.violated)


def adjudicate_transaction(
    transaction: Transaction,
    profiles: dict[str, IndustryProfile] | None = None,
) -> TransactionVerdict:
    """Run every applicable transactional method and combine."""
    profiles = profiles or DEFAULT_PROFILES
    profile = profiles.get(transaction.industry, profiles["general"])
    judgments: list[Judgment] = [
        comparable_uncontrolled_price(transaction, profile),
        cost_plus(transaction, profile),
    ]
    if transaction.resale_unit_price is not None:
        judgments.append(resale_price(transaction, profile))
    flagged = any(j.violated for j in judgments)
    adjustment = max((j.adjustment for j in judgments), default=0.0)
    return TransactionVerdict(
        transaction=transaction,
        judgments=tuple(judgments),
        flagged=flagged,
        adjustment=adjustment,
    )


@dataclass
class CompanyVerdict:
    """TNMM outcome for one company over its controlled transactions."""

    company_id: str
    judgment: Judgment
    transactions: list[Transaction] = field(default_factory=list)

    @property
    def flagged(self) -> bool:
        return self.judgment.violated

    @property
    def recovered_tax(self) -> float:
        return self.judgment.adjustment * ENTERPRISE_INCOME_TAX_RATE


def adjudicate_company(
    company_id: str,
    transactions: list[Transaction],
    profiles: dict[str, IndustryProfile] | None = None,
) -> CompanyVerdict:
    """TNMM over a company's controlled sales (its side of the IATs)."""
    profiles = profiles or DEFAULT_PROFILES
    industry = transactions[0].industry if transactions else "general"
    profile = profiles.get(industry, profiles["general"])
    revenue = sum(tx.revenue for tx in transactions)
    costs = sum(tx.total_cost for tx in transactions)
    judgment = transactional_net_margin(
        revenue, costs, profile, company_id=company_id
    )
    return CompanyVerdict(
        company_id=company_id, judgment=judgment, transactions=list(transactions)
    )
