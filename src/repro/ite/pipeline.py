"""The full two-phase detection pipeline (MSG-phase + ITE-phase).

Section 3.2 / Fig. 4: the MSG-phase mines suspicious groups from the
TPIIN; the ITE-phase then applies traditional ALP judgment *only to the
transactions behind suspicious trading relationships*.  The pipeline's
value is the workload reduction — Table 1's ~5% suspicious share means
the ITE-phase examines ~5% of all transactions — at no recall cost for
IAT-based schemes (an IAT requires an interest relationship, which the
MSG-phase captures by construction).

:func:`run_two_phase` returns flagged transactions, recovered tax, the
planted-ground-truth confusion matrix and the workload comparison
against the paper's one-by-one baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fusion.tpiin import TPIIN
from repro.ite.adjudication import TransactionVerdict, adjudicate_transaction
from repro.ite.transactions import IndustryProfile, TransactionBook
from repro.mining.detector import DetectionResult, detect
from repro.obs.tracing import NULL_TRACER, TracerLike

__all__ = ["TwoPhaseResult", "run_two_phase"]


@dataclass
class TwoPhaseResult:
    """Everything the two-phase pipeline produced."""

    msg_result: DetectionResult
    verdicts: list[TransactionVerdict] = field(default_factory=list)
    transactions_examined: int = 0
    transactions_total: int = 0
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def flagged(self) -> list[TransactionVerdict]:
        return [v for v in self.verdicts if v.flagged]

    @property
    def recovered_tax(self) -> float:
        return sum(v.recovered_tax for v in self.flagged)

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def workload_share(self) -> float:
        """Share of all transactions the ITE-phase had to examine."""
        if self.transactions_total == 0:
            return 0.0
        return self.transactions_examined / self.transactions_total

    def summary(self) -> str:
        return (
            f"examined {self.transactions_examined}/{self.transactions_total} "
            f"transactions ({100 * self.workload_share:.2f}%), flagged "
            f"{len(self.flagged)}, precision={self.precision:.3f} "
            f"recall={self.recall:.3f} f1={self.f1:.3f}, recovered tax "
            f"{self.recovered_tax:,.0f}"
        )


def run_two_phase(
    tpiin: TPIIN,
    book: TransactionBook,
    *,
    engine: str = "fast",
    profiles: dict[str, IndustryProfile] | None = None,
    msg_result: DetectionResult | None = None,
    tracer: TracerLike = NULL_TRACER,
) -> TwoPhaseResult:
    """Run MSG-phase detection, then ALP adjudication on the survivors.

    ``msg_result`` may carry a precomputed detection to avoid re-mining.
    Ground-truth accounting uses the book's planted ``evading_ids``:
    a false negative is a planted evasion whose transaction the
    ITE-phase either never examined (arc not suspicious) or examined but
    cleared.  A real ``tracer`` nests the MSG-phase's engine spans and
    the ITE judgment under the caller's span tree.
    """
    if msg_result is not None:
        result = msg_result
    else:
        with tracer.span("msg_phase"):
            result = detect(tpiin, engine=engine, trace=tracer)
    suspicious = result.suspicious_trading_arcs
    with tracer.span("ite_judgment") as ite_span:
        examined = book.for_arcs(suspicious)
        verdicts = [adjudicate_transaction(tx, profiles) for tx in examined]
        if tracer.enabled:
            ite_span.set(
                examined=len(examined),
                flagged=sum(1 for v in verdicts if v.flagged),
                total=len(book),
            )

    flagged_ids = {v.transaction.transaction_id for v in verdicts if v.flagged}
    evading = book.evading_ids
    tp = len(flagged_ids & evading)
    fp = len(flagged_ids - evading)
    fn = len(evading - flagged_ids)
    return TwoPhaseResult(
        msg_result=result,
        verdicts=verdicts,
        transactions_examined=len(examined),
        transactions_total=len(book),
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )
