"""Arm's-length-principle (ALP) judgment methods.

The paper's case studies apply the standard transfer-pricing toolset of
the UN Practical Manual [16] and the PwC report [18]:

* **CUP** — comparable uncontrolled price (Case 2: the $20 smart meters
  sold to the Hong Kong affiliate vs the $30 domestic price);
* **cost plus** — compare the realized markup over production cost with
  comparable producers' markup (Case 3: 9% on BMX exports);
* **resale price** — work back from the buyer's resale price minus a
  customary distributor margin;
* **TNMM** — transactional net margin method at company level (Case 1:
  the chronically loss-making producer C3 adjusted by 25.52M RMB
  against the industry's average net profit).

Every method returns a :class:`Judgment` with the violation verdict and
the taxable-income adjustment it implies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.ite.transactions import IndustryProfile, Transaction

__all__ = [
    "Judgment",
    "comparable_uncontrolled_price",
    "cost_plus",
    "profit_split",
    "resale_price",
    "transactional_net_margin",
]


@dataclass(frozen=True, slots=True)
class Judgment:
    """Outcome of one ALP method on one transaction (or one company)."""

    method: str
    violated: bool
    adjustment: float  # taxable-income increase implied, in currency units
    rationale: str

    def __post_init__(self) -> None:
        if self.adjustment < 0:
            raise EvaluationError("adjustment must be non-negative")


def comparable_uncontrolled_price(
    transaction: Transaction, profile: IndustryProfile, *, tolerance: float = 0.10
) -> Judgment:
    """CUP: flag prices more than ``tolerance`` below the comparable price."""
    fair = profile.fair_unit_price
    if fair <= 0:
        raise EvaluationError("industry profile has non-positive fair price")
    shortfall = (fair - transaction.unit_price) / fair
    if shortfall > tolerance:
        adjustment = (fair - transaction.unit_price) * transaction.quantity
        return Judgment(
            method="CUP",
            violated=True,
            adjustment=adjustment,
            rationale=(
                f"price {transaction.unit_price:.2f} is "
                f"{100 * shortfall:.1f}% below the comparable uncontrolled "
                f"price {fair:.2f}"
            ),
        )
    return Judgment(
        method="CUP",
        violated=False,
        adjustment=0.0,
        rationale=f"price within {100 * tolerance:.0f}% of the comparable price",
    )


def cost_plus(transaction: Transaction, profile: IndustryProfile) -> Judgment:
    """Cost plus: realized markup vs the comparable producers' markup."""
    expected = profile.standard_markup
    realized = transaction.markup
    if realized < expected - profile.markup_tolerance:
        fair_price = transaction.unit_cost * (1.0 + expected)
        adjustment = max(0.0, (fair_price - transaction.unit_price)) * transaction.quantity
        return Judgment(
            method="cost-plus",
            violated=True,
            adjustment=adjustment,
            rationale=(
                f"markup {100 * realized:.1f}% below the comparable "
                f"{100 * expected:.1f}% (tolerance "
                f"{100 * profile.markup_tolerance:.1f}%)"
            ),
        )
    return Judgment(
        method="cost-plus",
        violated=False,
        adjustment=0.0,
        rationale=f"markup {100 * realized:.1f}% within tolerance",
    )


def resale_price(
    transaction: Transaction, profile: IndustryProfile, *, tolerance: float = 0.10
) -> Judgment:
    """Resale price: seller's price vs buyer's resale net of the margin.

    Only applicable when the downstream resale price is known; raises
    otherwise so callers select methods explicitly.
    """
    if transaction.resale_unit_price is None:
        raise EvaluationError(
            f"{transaction.transaction_id}: resale-price method needs "
            "resale_unit_price"
        )
    implied = transaction.resale_unit_price / (1.0 + profile.resale_margin)
    shortfall = (implied - transaction.unit_price) / implied if implied > 0 else 0.0
    if shortfall > tolerance:
        adjustment = (implied - transaction.unit_price) * transaction.quantity
        return Judgment(
            method="resale-price",
            violated=True,
            adjustment=adjustment,
            rationale=(
                f"price {transaction.unit_price:.2f} is {100 * shortfall:.1f}% "
                f"below the resale-implied arm's-length price {implied:.2f}"
            ),
        )
    return Judgment(
        method="resale-price",
        violated=False,
        adjustment=0.0,
        rationale="price consistent with the buyer's resale margin",
    )


def profit_split(
    reported_profits: dict[str, float],
    contribution_weights: dict[str, float],
    *,
    tolerance: float = 0.10,
    focus: str | None = None,
) -> Judgment:
    """Profit split: divide the group's combined profit by contribution.

    The fifth standard method of the UN manual [16], used when the
    parties' dealings are too integrated for one-sided methods — e.g.
    Case 1's producer/marketer split, where the producer's functions
    (manufacturing) entitle it to a share of the combined result.

    ``reported_profits`` holds each party's booked profit from the
    controlled dealings; ``contribution_weights`` the functional-analysis
    weights (they need not be normalized).  A party whose booked share
    undercuts its contribution share by more than ``tolerance``
    (absolute, in share points) is flagged and adjusted up to its
    entitled share.  ``focus`` selects the audited party (defaults to
    the most under-allocated one).
    """
    if not reported_profits:
        raise EvaluationError("profit_split needs at least one party")
    if set(reported_profits) != set(contribution_weights):
        raise EvaluationError("profits and contribution weights must cover the same parties")
    total_weight = sum(contribution_weights.values())
    if total_weight <= 0:
        raise EvaluationError("contribution weights must sum to a positive value")
    combined = sum(reported_profits.values())
    if combined <= 0:
        return Judgment(
            method="profit-split",
            violated=False,
            adjustment=0.0,
            rationale="combined profit is non-positive; method not informative",
        )

    shortfalls: dict[str, float] = {}
    for party, weight in contribution_weights.items():
        entitled_share = weight / total_weight
        booked_share = reported_profits[party] / combined
        shortfalls[party] = entitled_share - booked_share
    target = focus if focus is not None else max(shortfalls, key=shortfalls.get)
    if target not in shortfalls:
        raise EvaluationError(f"unknown focus party {target!r}")
    shortfall = shortfalls[target]
    if shortfall > tolerance:
        entitled_profit = combined * contribution_weights[target] / total_weight
        adjustment = max(0.0, entitled_profit - reported_profits[target])
        return Judgment(
            method="profit-split",
            violated=True,
            adjustment=adjustment,
            rationale=(
                f"party {target} books {100 * reported_profits[target] / combined:.1f}% "
                f"of the combined profit against a "
                f"{100 * contribution_weights[target] / total_weight:.1f}% contribution"
            ),
        )
    return Judgment(
        method="profit-split",
        violated=False,
        adjustment=0.0,
        rationale=f"party {target}'s profit share matches its contribution",
    )


def transactional_net_margin(
    revenue: float,
    costs: float,
    profile: IndustryProfile,
    *,
    company_id: str = "?",
) -> Judgment:
    """TNMM at company level: net margin vs the arm's-length interval.

    ``revenue`` and ``costs`` aggregate the company's controlled
    transactions for the period; the adjustment lifts the margin to the
    interval's midpoint, mirroring the Case 1 reassessment.
    """
    if revenue <= 0:
        return Judgment(
            method="TNMM",
            violated=costs > 0,
            adjustment=costs * profile.net_margin_range[0] if costs > 0 else 0.0,
            rationale=f"company {company_id} reports no revenue against costs",
        )
    margin = (revenue - costs) / revenue
    lo, hi = profile.net_margin_range
    if margin < lo:
        midpoint = (lo + hi) / 2.0
        target_profit = revenue * midpoint
        adjustment = max(0.0, target_profit - (revenue - costs))
        return Judgment(
            method="TNMM",
            violated=True,
            adjustment=adjustment,
            rationale=(
                f"net margin {100 * margin:.1f}% below the arm's-length "
                f"interval [{100 * lo:.0f}%, {100 * hi:.0f}%]"
            ),
        )
    return Judgment(
        method="TNMM",
        violated=False,
        adjustment=0.0,
        rationale=f"net margin {100 * margin:.1f}% within the interval",
    )
