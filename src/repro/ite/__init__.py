"""ITE-phase: arm's-length judgment on suspicious-group transactions."""

from repro.ite.adjudication import (
    ENTERPRISE_INCOME_TAX_RATE,
    CompanyVerdict,
    TransactionVerdict,
    adjudicate_company,
    adjudicate_transaction,
)
from repro.ite.alp import (
    Judgment,
    profit_split,
    comparable_uncontrolled_price,
    cost_plus,
    resale_price,
    transactional_net_margin,
)
from repro.ite.pipeline import TwoPhaseResult, run_two_phase
from repro.ite.transactions import (
    DEFAULT_PROFILES,
    IndustryProfile,
    SimulationConfig,
    Transaction,
    TransactionBook,
    simulate_transactions,
)

__all__ = [
    "CompanyVerdict",
    "DEFAULT_PROFILES",
    "ENTERPRISE_INCOME_TAX_RATE",
    "IndustryProfile",
    "Judgment",
    "SimulationConfig",
    "Transaction",
    "TransactionBook",
    "TransactionVerdict",
    "TwoPhaseResult",
    "adjudicate_company",
    "adjudicate_transaction",
    "comparable_uncontrolled_price",
    "cost_plus",
    "profit_split",
    "resale_price",
    "run_two_phase",
    "simulate_transactions",
    "transactional_net_margin",
]
