"""Transaction records and the synthetic transaction simulator.

The paper's ITE-phase applies "traditional tax evasion identification
methods" to the transactions behind suspicious trading relationships.
The TAO withheld real transaction details (Section 5.1), so — per the
substitution rule in DESIGN.md — this module simulates them: every
trading arc carries a handful of transactions priced around the
industry's fair level, and a configurable share of the *suspicious*
arcs carries transfer-priced (under-invoiced) transactions, which gives
the two-phase pipeline a planted ground truth to measure against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.datagen.companies import INDUSTRIES
from repro.errors import EvaluationError

__all__ = [
    "Transaction",
    "TransactionBook",
    "IndustryProfile",
    "DEFAULT_PROFILES",
    "SimulationConfig",
    "simulate_transactions",
]


@dataclass(frozen=True, slots=True)
class Transaction:
    """One recorded sale from ``seller`` to ``buyer``."""

    transaction_id: str
    seller: str
    buyer: str
    industry: str
    quantity: float
    unit_price: float
    unit_cost: float
    resale_unit_price: float | None = None
    period: str = "2016"

    def __post_init__(self) -> None:
        if self.quantity <= 0:
            raise EvaluationError(f"{self.transaction_id}: quantity must be positive")
        if self.unit_price < 0 or self.unit_cost < 0:
            raise EvaluationError(f"{self.transaction_id}: negative price or cost")

    @property
    def revenue(self) -> float:
        return self.quantity * self.unit_price

    @property
    def total_cost(self) -> float:
        return self.quantity * self.unit_cost

    @property
    def gross_profit(self) -> float:
        return self.revenue - self.total_cost

    @property
    def markup(self) -> float:
        """Realized cost-plus markup; ``inf`` guarded for zero cost."""
        if self.total_cost == 0:
            return float("inf")
        return self.gross_profit / self.total_cost


@dataclass
class TransactionBook:
    """All transactions, indexed by trading arc and by seller."""

    transactions: list[Transaction] = field(default_factory=list)
    evading_ids: set[str] = field(default_factory=set)  # planted ground truth

    def add(self, transaction: Transaction, *, evading: bool = False) -> None:
        self.transactions.append(transaction)
        if evading:
            self.evading_ids.add(transaction.transaction_id)

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def by_arc(self) -> dict[tuple[str, str], list[Transaction]]:
        index: dict[tuple[str, str], list[Transaction]] = {}
        for tx in self.transactions:
            index.setdefault((tx.seller, tx.buyer), []).append(tx)
        return index

    def by_seller(self) -> dict[str, list[Transaction]]:
        index: dict[str, list[Transaction]] = {}
        for tx in self.transactions:
            index.setdefault(tx.seller, []).append(tx)
        return index

    def for_arcs(self, arcs: Iterable[tuple[str, str]]) -> list[Transaction]:
        wanted = set(arcs)
        return [tx for tx in self.transactions if (tx.seller, tx.buyer) in wanted]

    def is_evading(self, transaction: Transaction) -> bool:
        return transaction.transaction_id in self.evading_ids


@dataclass(frozen=True, slots=True)
class IndustryProfile:
    """Arm's-length comparables for one industry.

    ``standard_markup`` is the cost-plus markup of comparable producers
    (Case 3 used 9% for BMX), ``net_margin_range`` the arm's-length net
    margin interval used by TNMM (Case 1), and ``resale_margin`` the
    customary distributor margin for the resale-price method.
    """

    industry: str
    unit_cost: float = 100.0
    standard_markup: float = 0.12
    markup_tolerance: float = 0.05
    price_noise: float = 0.03
    net_margin_range: tuple[float, float] = (0.05, 0.14)
    resale_margin: float = 0.20

    @property
    def fair_unit_price(self) -> float:
        return self.unit_cost * (1.0 + self.standard_markup)


def _default_profiles() -> dict[str, IndustryProfile]:
    profiles = {}
    for i, industry in enumerate(INDUSTRIES):
        profiles[industry] = IndustryProfile(
            industry=industry,
            unit_cost=60.0 + 15.0 * i,
            standard_markup=0.09 + 0.01 * (i % 5),
        )
    profiles["general"] = IndustryProfile(industry="general")
    return profiles


#: One profile per generator industry plus a ``general`` fallback.
DEFAULT_PROFILES: dict[str, IndustryProfile] = _default_profiles()


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Knobs of the transaction simulator."""

    mean_transactions_per_arc: float = 2.0
    evasion_rate: float = 0.4  # share of suspicious arcs that actually evade
    underpricing_range: tuple[float, float] = (0.55, 0.85)  # price multiplier
    legit_discount_rate: float = 0.02  # honest arcs with aggressive discounts
    legit_discount_floor: float = 0.93
    seed: int = 7

    def __post_init__(self) -> None:
        if self.mean_transactions_per_arc <= 0:
            raise EvaluationError("mean_transactions_per_arc must be positive")
        lo, hi = self.underpricing_range
        if not 0.0 < lo <= hi < 1.0:
            raise EvaluationError("underpricing_range must satisfy 0 < lo <= hi < 1")
        if not 0.0 <= self.evasion_rate <= 1.0:
            raise EvaluationError("evasion_rate must be in [0, 1]")


def simulate_transactions(
    arcs: Iterable[tuple[str, str]],
    suspicious_arcs: set[tuple[str, str]],
    industry_of: dict[str, str],
    *,
    config: SimulationConfig | None = None,
    profiles: dict[str, IndustryProfile] | None = None,
) -> TransactionBook:
    """Generate a transaction book over ``arcs``.

    Arcs in ``suspicious_arcs`` are IAT candidates: a fraction
    ``evasion_rate`` of them under-invoices every transaction (planted
    evasion).  Honest arcs trade near the industry's fair price, with a
    small share of legitimate discounts to keep precision honest.
    """
    config = config or SimulationConfig()
    profiles = profiles or DEFAULT_PROFILES
    rng = np.random.default_rng(config.seed)
    book = TransactionBook()
    counter = 0
    for seller, buyer in arcs:
        industry = industry_of.get(seller, "general")
        profile = profiles.get(industry, profiles["general"])
        is_iat = (seller, buyer) in suspicious_arcs
        evades = bool(is_iat and rng.random() < config.evasion_rate)
        n_tx = 1 + int(rng.poisson(config.mean_transactions_per_arc - 1.0))
        for _ in range(n_tx):
            quantity = float(rng.integers(100, 5000))
            noise = 1.0 + float(rng.normal(0.0, profile.price_noise))
            fair = profile.fair_unit_price * max(noise, 0.5)
            if evades:
                lo, hi = config.underpricing_range
                price = fair * float(rng.uniform(lo, hi))
            elif rng.random() < config.legit_discount_rate:
                price = fair * float(
                    rng.uniform(config.legit_discount_floor, 0.97)
                )
            else:
                price = fair
            counter += 1
            book.add(
                Transaction(
                    transaction_id=f"T{counter:07d}",
                    seller=seller,
                    buyer=buyer,
                    industry=industry,
                    quantity=quantity,
                    unit_price=round(price, 2),
                    unit_cost=round(profile.unit_cost, 2),
                    resale_unit_price=round(
                        fair * (1.0 + profile.resale_margin), 2
                    ),
                ),
                evading=evades,
            )
    return book
