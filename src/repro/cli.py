"""Command-line front end: ``repro-tpiin`` (or ``python -m repro``).

Subcommands
-----------

``generate``
    Generate the provincial dataset and write the fused TPIIN (with a
    trading network at the given probability) as CSV.
``mine``
    Mine suspicious groups from a TPIIN stored as CSV; writes the
    paper's ``susGroup``/``susTrade`` files and a JSON result.
``table1``
    Run the Table-1 sweep and print the table (optionally side by side
    with the paper's numbers).
``investigate``
    Print the affiliated-transaction briefing for one company of the
    provincial dataset.
``serve``
    Boot the long-lived detection daemon over a TPIIN CSV: JSON API on
    HTTP, WAL-backed durability under ``--state-dir``.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path

from repro.analysis.audit_report import write_audit_report
from repro.analysis.explain import explain_arc
from repro.analysis.investigate import investigate_company
from repro.analysis.table1 import run_table1
from repro.datagen.config import PAPER_TRADING_PROBABILITIES, ProvinceConfig
from repro.datagen.province import generate_province
from repro.detectors.registry import ALL_DETECTORS
from repro.detectors.runner import run_detectors
from repro.fusion.tpiin import TPIIN
from repro.io.edge_list_io import read_tpiin_csv, write_tpiin_csv
from repro.io.registry_io import load_registry_csvs
from repro.io.results_io import write_detection_json
from repro.ite.pipeline import run_two_phase
from repro.ite.transactions import SimulationConfig, simulate_transactions
from repro.mining.detector import IAT_DETECTOR_NAME, detect
from repro.mining.options import DetectOptions, Engine
from repro.obs.profile import render_profile
from repro.service.config import ServiceConfig
from repro.service.server import DetectionHTTPServer, ServiceLike, serve
from repro.service.sharding import ShardedDetectionService
from repro.service.state import DetectionService

__all__ = ["main", "build_parser"]

_ENGINE_CHOICES = [engine.value for engine in Engine]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tpiin",
        description=(
            "TPIIN construction and suspicious tax-evasion-group mining "
            "(reproduction of Tian et al., 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate the provincial dataset as CSV")
    gen.add_argument("--out", type=Path, default=Path("tpiin"), help="output prefix")
    gen.add_argument("--probability", type=float, default=0.002)
    gen.add_argument("--seed", type=int, default=20170417)
    gen.add_argument("--companies", type=int, default=2452)

    mine = sub.add_parser("mine", help="mine suspicious groups from a TPIIN CSV")
    mine.add_argument("arcs", type=Path, help="arc CSV (start,end,color)")
    mine.add_argument("nodes", type=Path, help="node CSV (node,color)")
    mine.add_argument("--engine", default="faithful", choices=_ENGINE_CHOICES)
    mine.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker count for --engine parallel (default: cpu count)",
    )
    mine.add_argument("--out-dir", type=Path, default=Path("mining-out"))
    mine.add_argument(
        "--profile",
        action="store_true",
        help="trace the run and print the stage tree plus slowest subTPIINs",
    )
    mine.add_argument(
        "--detector",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "portfolio detector to run over the TPIIN (repeatable; "
            '"all" runs every registered detector); '
            "default: the paper's IAT mining only"
        ),
    )

    table = sub.add_parser("table1", help="run the Table-1 sweep")
    table.add_argument("--seed", type=int, default=20170417)
    table.add_argument(
        "--probabilities",
        type=float,
        nargs="*",
        default=list(PAPER_TRADING_PROBABILITIES),
    )
    table.add_argument("--companies", type=int, default=2452)
    table.add_argument("--compare-paper", action="store_true")

    inv = sub.add_parser("investigate", help="drill into one company")
    inv.add_argument("company", help="company id, e.g. C00000")
    inv.add_argument("--seed", type=int, default=20170417)
    inv.add_argument("--probability", type=float, default=0.002)
    inv.add_argument("--companies", type=int, default=2452)
    inv.add_argument("--explain", action="store_true", help="narrate proof chains")

    two = sub.add_parser(
        "twophase", help="run MSG + ITE on a synthetic province, write a report"
    )
    two.add_argument("--seed", type=int, default=20170417)
    two.add_argument("--companies", type=int, default=300)
    two.add_argument("--probability", type=float, default=0.01)
    two.add_argument("--report", type=Path, default=Path("audit_report.md"))

    ingest = sub.add_parser(
        "ingest", help="mine a registry-CSV directory (persons/companies/relations)"
    )
    ingest.add_argument("directory", type=Path)
    ingest.add_argument("--engine", default="faithful", choices=_ENGINE_CHOICES)
    ingest.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker count for --engine parallel (default: cpu count)",
    )
    ingest.add_argument("--out-dir", type=Path, default=Path("mining-out"))

    srv = sub.add_parser(
        "serve", help="run the detection daemon over a TPIIN CSV (JSON API)"
    )
    srv.add_argument("arcs", type=Path, help="arc CSV (start,end,color)")
    srv.add_argument("nodes", type=Path, help="node CSV (node,color)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8420)
    srv.add_argument(
        "--state-dir",
        type=Path,
        default=Path("service-state"),
        help="directory for the WAL and snapshots",
    )
    srv.add_argument(
        "--snapshot-every",
        type=int,
        default=500,
        help="compact (snapshot + WAL truncate) every N applied updates",
    )
    srv.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync on WAL appends (faster, loses the last acks on power loss)",
    )
    srv.add_argument(
        "--max-cached-roots",
        type=int,
        default=4096,
        help="LRU capacity of the per-root influence-path cache (0 = unbounded)",
    )
    srv.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard worker count; >1 partitions components across workers",
    )
    srv.add_argument(
        "--queue-limit",
        type=int,
        default=1024,
        help="per-shard ingest queue bound before requests are shed with 429",
    )
    srv.add_argument(
        "--group-commit-max",
        type=int,
        default=128,
        help="max queued mutations fused into one WAL fsync",
    )
    return parser


def _province_config(args: argparse.Namespace) -> ProvinceConfig:
    companies = getattr(args, "companies", 2452)
    if companies == 2452:
        return ProvinceConfig(seed=args.seed)
    return ProvinceConfig.small(seed=args.seed, companies=companies)


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = generate_province(_province_config(args))
    trading = dataset.trading_graph(args.probability)
    tpiin = dataset.fuse_with(trading).tpiin
    arc_path = args.out.with_suffix(".arcs.csv")
    node_path = args.out.with_suffix(".nodes.csv")
    write_tpiin_csv(tpiin, arc_path, node_path)
    stats = tpiin.stats()
    print(f"wrote {arc_path} and {node_path}")
    print(
        f"persons={stats.persons} companies={stats.companies} "
        f"influence={stats.influence_arcs} trading={stats.trading_arcs}"
    )
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    tpiin = read_tpiin_csv(args.arcs, args.nodes)
    tpiin.validate()
    if args.detector:
        return _mine_portfolio(tpiin, args)
    result = detect(
        tpiin, engine=args.engine, processes=args.processes, trace=args.profile
    )
    print(result.summary())
    if args.profile and result.trace is not None:
        print()
        print(render_profile(result.trace))
    paths = result.write_files(args.out_dir)
    json_path = write_detection_json(result, args.out_dir / "detection.json")
    print(f"wrote {len(paths)} sus files and {json_path}")
    return 0


def _mine_portfolio(tpiin: TPIIN, args: argparse.Namespace) -> int:
    """``mine --detector``: run the selected portfolio over one freeze."""
    selection: "str | list[str]" = (
        ALL_DETECTORS if ALL_DETECTORS in args.detector else list(args.detector)
    )
    options = DetectOptions(engine=args.engine, processes=args.processes)
    report = run_detectors(tpiin, selection, options=options, trace=args.profile)
    print(report.summary())
    if args.profile and report.trace is not None:
        print()
        print(render_profile(report.trace))
    args.out_dir.mkdir(parents=True, exist_ok=True)
    findings_path = args.out_dir / "findings.json"
    findings_path.write_text(json.dumps(report.to_dict(), indent=2))
    written = [findings_path]
    iat_run = report.runs.get(IAT_DETECTOR_NAME)
    if iat_run is not None and iat_run.detection is not None:
        # The reference detector keeps the legacy artifacts intact.
        written.extend(iat_run.detection.write_files(args.out_dir))
        written.append(
            write_detection_json(iat_run.detection, args.out_dir / "detection.json")
        )
    print(f"wrote {len(written)} files under {args.out_dir}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    dataset = generate_province(_province_config(args))
    result = run_table1(dataset, args.probabilities)
    print(result.render())
    if args.compare_paper:
        print()
        print(result.render_with_paper())
    return 0


def _cmd_investigate(args: argparse.Namespace) -> int:
    dataset = generate_province(_province_config(args))
    base = dataset.antecedent_tpiin()
    tpiin = dataset.overlay_trading(base, args.probability)
    result = detect(tpiin, engine=Engine.FAST)
    investigation = investigate_company(tpiin, result, args.company)
    print(investigation.render())
    print()
    print("Investment tree:")
    print(investigation.investment_tree(tpiin))
    if args.explain and investigation.groups:
        arcs = sorted({g.trading_arc for g in investigation.groups})
        print()
        for arc in arcs[:5]:
            print(explain_arc(arc, result, tpiin))
            print()
    return 0


def _cmd_twophase(args: argparse.Namespace) -> int:
    dataset = generate_province(_province_config(args))
    base = dataset.antecedent_tpiin()
    tpiin = dataset.overlay_trading(base, args.probability)
    result = detect(tpiin, engine=Engine.FAST)
    print(result.summary())
    industry_of = {
        c.company_id: c.industry for c in dataset.registry.companies.values()
    }
    book = simulate_transactions(
        list(tpiin.trading_arcs()),
        result.suspicious_trading_arcs,
        industry_of,
        config=SimulationConfig(seed=args.seed),
    )
    outcome = run_two_phase(tpiin, book, msg_result=result)
    print(outcome.summary())
    path = write_audit_report(args.report, tpiin, result, two_phase=outcome)
    print(f"wrote {path}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    bundle = load_registry_csvs(args.directory)
    tpiin = bundle.fuse().tpiin
    result = detect(tpiin, engine=args.engine, processes=args.processes)
    print(result.summary())
    paths = result.write_files(args.out_dir)
    json_path = write_detection_json(result, args.out_dir / "detection.json")
    print(f"wrote {len(paths)} sus files and {json_path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(levelname)s %(message)s"
    )
    tpiin = read_tpiin_csv(args.arcs, args.nodes)
    tpiin.validate()
    config = ServiceConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        snapshot_every=args.snapshot_every,
        fsync=not args.no_fsync,
        max_cached_roots=args.max_cached_roots or None,
        shards=max(1, args.shards),
        ingest_queue_limit=args.queue_limit,
        group_commit_max=args.group_commit_max,
    )
    service: ServiceLike
    if config.shards > 1:
        service = ShardedDetectionService.open(tpiin, config)
    else:
        service = DetectionService.open(tpiin, config)
    server = DetectionHTTPServer((config.host, config.port), service)
    host, port = server.server_address[:2]
    print(
        f"serving on http://{host}:{port} "
        f"(state dir {config.state_dir}, arcs {service.arc_count()}, "
        f"recovered {service.recovered_records} WAL records)"
    )
    serve(server)
    print("daemon drained; state flushed")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "mine": _cmd_mine,
    "table1": _cmd_table1,
    "investigate": _cmd_investigate,
    "twophase": _cmd_twophase,
    "ingest": _cmd_ingest,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
