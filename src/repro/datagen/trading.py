"""Random trading-network generation (Section 5.1).

The paper produced its trading networks "according to the rules of
random network implemented by Gephi ... the value of trading probability
of each node trading with other companies has a range of 0.002 to 0.1".
Gephi's random generator is a directed Erdos-Renyi ``G(n, p)``: every
ordered company pair carries a trading arc independently with
probability ``p``.  Expected arc counts match the paper's Table 1
totals (e.g. ``p = 0.002`` over 2,452 companies gives ``p*n*(n-1)``
~= 12,022 vs the paper's 11,939).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.datagen.config import TradingConfig
from repro.datagen.rng import derive_rng
from repro.graph.digraph import Node
from repro.model.homogeneous import TradingGraph

__all__ = ["random_trading_arcs", "random_trading_graph", "scale_free_trading_arcs"]


def random_trading_arcs(
    companies: Sequence[Node],
    config: TradingConfig,
) -> list[tuple[Node, Node]]:
    """Sample directed ER trading arcs over ``companies``.

    Vectorized: one Bernoulli matrix over all ordered pairs (48 MB of
    transient float randomness at provincial scale — fine), self-loops
    masked out.  Deterministic in ``config.seed`` and the company order.
    """
    n = len(companies)
    if n < 2 or config.probability == 0.0:
        return []
    rng = derive_rng(config.seed, f"trading:{config.probability}")
    mask = rng.random((n, n)) < config.probability
    np.fill_diagonal(mask, False)
    pairs = np.argwhere(mask)
    return [(companies[int(i)], companies[int(j)]) for i, j in pairs]


def random_trading_graph(
    companies: Sequence[Node],
    config: TradingConfig,
) -> TradingGraph:
    """The sampled arcs wrapped as a *G4* trading graph."""
    graph = TradingGraph()
    for company in companies:
        graph.add_company(company)
    for seller, buyer in random_trading_arcs(companies, config):
        graph.add_trade(seller, buyer)
    return graph


def scale_free_trading_arcs(
    companies: Sequence[Node],
    *,
    arcs_per_company: int = 3,
    seed: int = 0,
) -> list[tuple[Node, Node]]:
    """Preferential-attachment trading arcs (Gephi's other generator).

    Real trading networks are closer to scale-free than to Erdos-Renyi:
    a few hub wholesalers trade with very many counterparties.  This
    generator grows the network company by company, each newcomer
    selling to ``arcs_per_company`` buyers chosen with probability
    proportional to (1 + current degree).  Used by the robustness
    ablation: the ~5% suspicious share of Table 1 should not depend on
    the ER assumption, because the share is a property of antecedent
    *pairs*, not of how trading partners are matched.
    """
    n = len(companies)
    if n < 2 or arcs_per_company < 1:
        return []
    rng = derive_rng(seed, f"trading-scale-free:{arcs_per_company}")
    # Shuffle the growth order: company ids are emitted cluster by
    # cluster, and growing in that order would correlate partner choice
    # with antecedent structure (early = biggest conglomerate), which is
    # exactly what a trading-model ablation must not do.
    order = rng.permutation(n)
    companies = [companies[int(k)] for k in order]
    degree = np.ones(n)  # +1 smoothing so isolated nodes stay reachable
    arcs: set[tuple[int, int]] = set()
    for i in range(1, n):
        weights = degree[:i] / degree[:i].sum()
        k = min(arcs_per_company, i)
        targets = rng.choice(i, size=k, replace=False, p=weights)
        for j in targets:
            j = int(j)
            if rng.random() < 0.5:
                arcs.add((i, j))
            else:
                arcs.add((j, i))
            degree[i] += 1
            degree[j] += 1
    return [(companies[a], companies[b]) for a, b in sorted(arcs)]
