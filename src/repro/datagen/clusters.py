"""Business-cluster size planning for the provincial generator.

The suspicious-arc share of Table 1 (~5% at every trading probability)
is a *structural* property of the antecedent network: with uniformly
random trading arcs, the share equals the fraction of ordered company
pairs that share an antecedent root.  The generator realizes that
fraction by partitioning companies into **business clusters** — each
cluster is one controlling family's sphere, inside which every company
descends from the family root — so the share is exactly

    sum_i n_i * (n_i - 1)  /  (N * (N - 1))

for cluster sizes ``n_i``.  :func:`plan_cluster_sizes` picks a mix of a
few conglomerates and a long tail of small groups hitting a target
share.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DataGenError

__all__ = ["plan_cluster_sizes", "ordered_pair_share"]


def ordered_pair_share(sizes: list[int], total: int) -> float:
    """The in-cluster ordered-pair fraction the sizes realize."""
    if total < 2:
        return 0.0
    return sum(s * (s - 1) for s in sizes) / (total * (total - 1))


def plan_cluster_sizes(
    n_companies: int,
    target_share: float,
    *,
    max_fraction: float = 0.145,
    rng: np.random.Generator | None = None,
) -> list[int]:
    """Choose cluster sizes summing to ``n_companies``.

    Greedy: repeatedly take the largest cluster that leaves the pair
    budget on track (each step consumes ~42% of the remaining budget,
    yielding a geometric conglomerate cascade like real provincial
    economies), then fill the remainder with small groups of 2-6 and
    singletons.  Deterministic for a given ``rng`` state.
    """
    if n_companies < 1:
        raise DataGenError("n_companies must be positive")
    if not 0.0 <= target_share < 1.0:
        raise DataGenError("target_share must be in [0, 1)")
    rng = rng if rng is not None else np.random.default_rng(0)

    target_pairs = target_share * n_companies * max(n_companies - 1, 1)
    max_size = max(2, int(n_companies * max_fraction))
    sizes: list[int] = []
    remaining_companies = n_companies
    remaining_pairs = target_pairs

    # Conglomerate cascade.
    while remaining_pairs > 60 and remaining_companies > 8:
        want = 0.42 * remaining_pairs
        s = int((1 + math.sqrt(1 + 4 * want)) / 2)
        s = min(s, max_size, remaining_companies - 4)
        if s < 7:
            break
        sizes.append(s)
        remaining_companies -= s
        remaining_pairs -= s * (s - 1)

    # Small-group tail.
    while remaining_pairs > 2 and remaining_companies > 1:
        s = int(rng.integers(2, 7))
        s = min(s, remaining_companies)
        if s < 2:
            break
        sizes.append(s)
        remaining_companies -= s
        remaining_pairs -= s * (s - 1)

    # Singletons absorb the rest.
    sizes.extend([1] * remaining_companies)
    if sum(sizes) != n_companies:
        raise DataGenError(
            f"internal planning error: sizes sum to {sum(sizes)}, "
            f"expected {n_companies}"
        )
    return sizes
