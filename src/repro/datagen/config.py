"""Configuration objects for the synthetic taxpayer-network generators.

The default :class:`ProvinceConfig` reproduces the scale of the paper's
real provincial dataset (Section 5.1): 776 directors, 1,350 legal
persons and 2,452 companies, with an antecedent structure calibrated so
that roughly 5% of uniformly random trading arcs fall between companies
sharing an antecedent — the share Table 1 reports across every trading
probability setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DataGenError

__all__ = ["ClusterPlan", "ProvinceConfig", "TradingConfig", "PAPER_TRADING_PROBABILITIES"]


#: The twenty trading-probability settings of Table 1.
PAPER_TRADING_PROBABILITIES: tuple[float, ...] = (
    0.002,
    0.003,
    0.004,
    0.005,
    0.006,
    0.008,
    0.010,
    0.012,
    0.014,
    0.016,
    0.018,
    0.020,
    0.030,
    0.040,
    0.050,
    0.060,
    0.070,
    0.080,
    0.090,
    0.100,
)


@dataclass(frozen=True, slots=True)
class ProvinceConfig:
    """Parameters of the provincial synthetic dataset.

    Attributes
    ----------
    companies / legal_persons / directors:
        Entity counts; the defaults match the paper's Figs. 11-12.
    target_suspicious_share:
        Desired probability that a uniformly random ordered company pair
        shares an antecedent (drives the business-cluster size mix).
    max_cluster_fraction:
        Upper bound on one business cluster's share of all companies.
    family_size_range:
        Min/max kin persons forming a cluster's controlling family.
    family_direct_lp_share:
        Fraction of a cluster's companies whose legal person is the
        controlling family itself (direct root arcs produce the simple
        groups of Table 1; see DESIGN.md calibration notes).
    investment_extra_arc_share:
        Cross arcs added on top of the cluster's investment tree, as a
        fraction of tree size (path multiplicity -> groups per arc).
    dual_holding_attach_both:
        In conglomerate clusters, probability that a subsidiary is held
        by *both* twin holdings (the diamond produces interior-disjoint
        trail pairs, i.e. simple groups).
    anchor_base / anchor_divisor:
        Anchor directors per conglomerate: ``base + size // divisor``;
        each anchor sits on the management company's board and yields
        one family's worth of complex groups per suspicious pair.
    director_companies_range:
        Min/max companies a director sits on (within one cluster).
    director_interlock_probability:
        Probability that two directors of the same cluster interlock.
    mutual_investment_pairs:
        Company pairs with mutual (cyclic) investment to inject.  The
        paper's province had none; nonzero values exercise the SCS
        contraction path.
    seed:
        Root seed for every derived random stream.
    """

    companies: int = 2452
    legal_persons: int = 1350
    directors: int = 776
    target_suspicious_share: float = 0.0505
    max_cluster_fraction: float = 0.145
    family_size_range: tuple[int, int] = (1, 3)
    family_direct_lp_share: float = 0.18
    investment_extra_arc_share: float = 0.04
    dual_holding_attach_both: float = 0.6
    anchor_base: int = 1
    anchor_divisor: int = 130
    director_companies_range: tuple[int, int] = (1, 3)
    director_interlock_probability: float = 0.35
    mutual_investment_pairs: int = 0
    seed: int = 20170417

    def __post_init__(self) -> None:
        if self.companies < 1:
            raise DataGenError("companies must be positive")
        if self.legal_persons < 1:
            raise DataGenError("legal_persons must be positive")
        if self.directors < 0:
            raise DataGenError("directors must be non-negative")
        if not 0.0 <= self.target_suspicious_share < 1.0:
            raise DataGenError("target_suspicious_share must be in [0, 1)")
        if not 0.0 < self.max_cluster_fraction <= 1.0:
            raise DataGenError("max_cluster_fraction must be in (0, 1]")
        lo, hi = self.family_size_range
        if not 1 <= lo <= hi:
            raise DataGenError("family_size_range must satisfy 1 <= lo <= hi")
        dlo, dhi = self.director_companies_range
        if not 1 <= dlo <= dhi:
            raise DataGenError("director_companies_range must satisfy 1 <= lo <= hi")
        if not 0.0 <= self.family_direct_lp_share <= 1.0:
            raise DataGenError("family_direct_lp_share must be in [0, 1]")
        if not 0.0 <= self.investment_extra_arc_share <= 2.0:
            raise DataGenError("investment_extra_arc_share must be in [0, 2]")
        if not 0.0 <= self.dual_holding_attach_both <= 1.0:
            raise DataGenError("dual_holding_attach_both must be in [0, 1]")
        if self.anchor_base < 0 or self.anchor_divisor < 1:
            raise DataGenError("anchor parameters must be non-negative / positive")
        if not 0.0 <= self.director_interlock_probability <= 1.0:
            raise DataGenError("director_interlock_probability must be in [0, 1]")
        if self.mutual_investment_pairs < 0:
            raise DataGenError("mutual_investment_pairs must be non-negative")

    @classmethod
    def small(cls, *, seed: int = 7, companies: int = 120) -> "ProvinceConfig":
        """A scaled-down config for tests and quick examples."""
        return cls(
            companies=companies,
            legal_persons=max(2, int(companies * 0.55)),
            directors=max(1, int(companies * 0.316)),
            seed=seed,
        )


@dataclass(frozen=True, slots=True)
class TradingConfig:
    """Parameters of one random trading network (Gephi-style G(n, p))."""

    probability: float = 0.002
    seed: int = 20170417

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise DataGenError("trading probability must be in [0, 1]")


@dataclass
class ClusterPlan:
    """Internal: the per-cluster layout the province generator executes."""

    index: int
    company_ids: list[str] = field(default_factory=list)
    family_ids: list[str] = field(default_factory=list)
    lp_ids: list[str] = field(default_factory=list)
    director_ids: list[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.company_ids)

    @property
    def holding(self) -> str:
        return self.company_ids[0]
