"""Influence-graph (*G2*) generation for the provincial dataset.

Mirrors the conglomerate layout of :mod:`repro.datagen.investment`:

* the controlling **family** takes the legal-person seats of the twin
  holdings (and, for a configurable share of subsidiaries, direct LP
  seats — the source of simple suspicious groups);
* the **management company** gets a dedicated pool legal person, and a
  few **anchor directors** sit on its board — every path from these
  antecedents runs through ``M``, producing the stable complex-group
  volume of Table 1;
* remaining subsidiaries draw legal persons from the cluster pool, and
  ordinary directors sit on one to a few boards.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.config import ClusterPlan
from repro.datagen.investment import CONGLOMERATE_MIN_SIZE
from repro.model.colors import InfluenceKind
from repro.model.homogeneous import InfluenceGraph

__all__ = ["build_influence", "LegalPersonAssignment"]

LegalPersonAssignment = dict[str, str]  # company id -> legal person id


def _anchor_count(cluster_size: int, *, base: int = 3, divisor: int = 200) -> int:
    """Management-board anchor directors for a cluster of a given size."""
    if cluster_size < CONGLOMERATE_MIN_SIZE:
        return 0
    return base + cluster_size // divisor


def build_influence(
    clusters: list[ClusterPlan],
    *,
    family_direct_lp_share: float,
    director_companies_range: tuple[int, int],
    rng: np.random.Generator,
    anchor_base: int = 3,
    anchor_divisor: int = 200,
) -> tuple[InfluenceGraph, LegalPersonAssignment]:
    """Build *G2* and return it with the company -> LP assignment."""
    g2 = InfluenceGraph()
    lp_of: LegalPersonAssignment = {}
    d_lo, d_hi = director_companies_range

    def assign_lp(person: str, company: str, kind: InfluenceKind) -> None:
        g2.add_influence(person, company, kind, legal_person=True)
        lp_of[company] = person

    for cluster in clusters:
        companies = cluster.company_ids
        family = cluster.family_ids
        pool = cluster.lp_ids  # includes the family members
        non_family_pool = [p for p in pool if p not in family] or list(family)
        conglomerate = cluster.size >= CONGLOMERATE_MIN_SIZE

        if conglomerate:
            management, h1, h2 = companies[0], companies[1], companies[2]
            head = family[0]
            assign_lp(head, h1, InfluenceKind.CEO_OF)
            assign_lp(family[1] if len(family) > 1 else head, h2, InfluenceKind.CEO_OF)
            assign_lp(non_family_pool[0], management, InfluenceKind.CEO_OF)
            rest = companies[3:]
            pool_start = 1  # pool[0] serves the management company
        else:
            head = family[0] if family else pool[0]
            assign_lp(head, cluster.holding, InfluenceKind.CEO_OF)
            rest = companies[1:]
            pool_start = 0

        # Family-direct LP seats on a share of subsidiaries.
        n_direct = int(round(len(rest) * family_direct_lp_share)) if family else 0
        direct_set: set[int] = set()
        if rest and n_direct:
            direct_set = set(
                rng.choice(len(rest), size=min(n_direct, len(rest)), replace=False)
                .tolist()
            )
            for i in direct_set:
                member = family[int(rng.integers(0, len(family)))]
                assign_lp(member, rest[i], InfluenceKind.CEO_AND_D_OF)

        # Remaining subsidiaries: pool LPs, each pool member served first.
        assignable = [i for i in range(len(rest)) if i not in direct_set]
        rng.shuffle(assignable)
        cycle = non_family_pool[pool_start:] or non_family_pool
        for slot, i in enumerate(assignable):
            lp = (
                cycle[slot]
                if slot < len(cycle)
                else cycle[int(rng.integers(0, len(cycle)))]
            )
            assign_lp(lp, rest[i], InfluenceKind.CEO_OF)

        # Directors: anchors on the management board, the rest ordinary.
        n_anchors = 0
        if conglomerate:
            n_anchors = min(
                len(cluster.director_ids),
                _anchor_count(cluster.size, base=anchor_base, divisor=anchor_divisor),
            )
            for director in cluster.director_ids[:n_anchors]:
                g2.add_influence(director, companies[0], InfluenceKind.D_OF)
        for director in cluster.director_ids[n_anchors:]:
            m = min(int(rng.integers(d_lo, d_hi + 1)), len(companies))
            picks = rng.choice(len(companies), size=m, replace=False)
            for pick in picks:
                g2.add_influence(director, companies[int(pick)], InfluenceKind.D_OF)
    return g2, lp_of
