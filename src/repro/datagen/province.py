"""The provincial synthetic dataset (Section 5.1's real-data stand-in).

Generates, at the paper's scale (776 directors, 1,350 legal persons,
2,452 companies), the four homogeneous source networks *G1*, *G2*,
*GI*/*G3* and — per trading probability — *G4*, plus the entity
registry.  The antecedent structure is organized into business clusters
(see :mod:`repro.datagen.clusters`) calibrated so that the suspicious
share of uniformly random trading arcs lands near the paper's ~5%.

Substitution note (DESIGN.md): the paper used confidential CSRC/HRDPSC/
PTAO extracts; the mining algorithms only ever see the resulting graph,
so a structurally calibrated synthetic graph preserves the evaluated
behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datagen.clusters import ordered_pair_share, plan_cluster_sizes
from repro.datagen.companies import INDUSTRIES, make_company
from repro.datagen.config import ClusterPlan, ProvinceConfig, TradingConfig
from repro.datagen.influence import build_influence
from repro.datagen.interdependence import build_interdependence
from repro.datagen.investment import build_investment
from repro.datagen.people import make_director, make_legal_person
from repro.datagen.rng import derive_rng
from repro.datagen.trading import random_trading_arcs, random_trading_graph
from repro.fusion.pipeline import FusionResult, fuse
from repro.fusion.tpiin import TPIIN
from repro.model.colors import EColor
from repro.model.entities import EntityRegistry
from repro.model.homogeneous import (
    InfluenceGraph,
    InterdependenceGraph,
    InvestmentGraph,
    TradingGraph,
)

__all__ = ["ProvincialDataset", "generate_province"]


@dataclass
class ProvincialDataset:
    """Everything Section 5.1 builds before the trading sweep."""

    config: ProvinceConfig
    registry: EntityRegistry
    interdependence: InterdependenceGraph
    influence: InfluenceGraph
    investment: InvestmentGraph
    clusters: list[ClusterPlan] = field(default_factory=list)
    lp_of: dict[str, str] = field(default_factory=dict)

    @property
    def company_ids(self) -> list[str]:
        return [c for cluster in self.clusters for c in cluster.company_ids]

    @property
    def planned_suspicious_share(self) -> float:
        """The in-cluster ordered-pair share the cluster plan realizes."""
        return ordered_pair_share(
            [c.size for c in self.clusters], self.config.companies
        )

    # ------------------------------------------------------------------
    def trading_graph(self, probability: float, *, seed: int | None = None) -> TradingGraph:
        """One *G4* at the given trading probability."""
        return random_trading_graph(
            self.company_ids,
            TradingConfig(
                probability=probability,
                seed=self.config.seed if seed is None else seed,
            ),
        )

    def fuse_with(self, trading: TradingGraph, *, validate: bool = False) -> FusionResult:
        """Run the full fusion pipeline against one trading network.

        Input validation is off by default here purely for sweep speed;
        the generator's own tests fuse with validation on.
        """
        registry = None  # syndicates are registered once, via `fuse_base`
        return fuse(
            self.interdependence,
            self.influence,
            self.investment,
            trading,
            registry=registry,
            validate_inputs=validate,
        )

    def antecedent_tpiin(self, *, validate: bool = True) -> TPIIN:
        """The fused TPIIN with an empty trading network.

        The Table-1 sweep fuses once and then overlays each trading
        network with :meth:`overlay_trading`, which is much cheaper than
        re-running contraction twenty times.
        """
        empty = TradingGraph()
        for company in self.company_ids:
            empty.add_company(company)
        return fuse(
            self.interdependence,
            self.influence,
            self.investment,
            empty,
            validate_inputs=validate,
        ).tpiin

    def overlay_trading(
        self, base: TPIIN, probability: float, *, seed: int | None = None
    ) -> TPIIN:
        """A new TPIIN: ``base``'s antecedent plus fresh random trading arcs.

        Trading arc endpoints are remapped through the base's contraction
        node map; arcs collapsing into one company syndicate are recorded
        as intra-SCS trades, mirroring the fusion pipeline.
        """
        arcs = random_trading_arcs(
            self.company_ids,
            TradingConfig(
                probability=probability,
                seed=self.config.seed if seed is None else seed,
            ),
        )
        graph = base.antecedent_graph()  # fresh copy with every node
        intra_scs: list[tuple[str, str]] = []
        node_map = base.node_map
        mapped: list[tuple[str, str]] = []
        for seller, buyer in arcs:
            s = node_map.get(seller, seller)
            b = node_map.get(buyer, buyer)
            if s == b:
                intra_scs.append((seller, buyer))
            else:
                mapped.append((s, b))
        graph.add_arcs(mapped, EColor.TRADING)
        return TPIIN(
            graph=graph,
            registry=base.registry,
            node_map=dict(node_map),
            intra_scs_trades=intra_scs,
            scs_subgraphs=dict(base.scs_subgraphs),
            arc_provenance=dict(base.arc_provenance),
        )

    # ------------------------------------------------------------------
    def figure_stats(self) -> dict[str, str]:
        """Node/edge counts matching the captions of Figs. 11-14."""
        return {
            "G1 (Fig. 11)": (
                f"{self.config.directors} directors, "
                f"{self.config.legal_persons} legal persons, "
                f"{self.interdependence.number_of_links} interdependence links"
            ),
            "G2 (Fig. 12)": (
                f"{self.influence.number_of_persons} persons, "
                f"{self.influence.number_of_companies} companies, "
                f"{self.influence.number_of_influences} influence arcs"
            ),
            "G3 (Fig. 13)": (
                f"{self.investment.number_of_companies} companies, "
                f"{self.investment.number_of_arcs} investment arcs"
            ),
        }


def generate_province(config: ProvinceConfig | None = None) -> ProvincialDataset:
    """Generate the provincial dataset for ``config`` (defaults to paper scale)."""
    config = config or ProvinceConfig()
    plan_rng = derive_rng(config.seed, "clusters")
    sizes = plan_cluster_sizes(
        config.companies,
        config.target_suspicious_share,
        max_fraction=config.max_cluster_fraction,
        rng=plan_rng,
    )
    sizes.sort(reverse=True)

    clusters: list[ClusterPlan] = []
    company_counter = 0
    for index, size in enumerate(sizes):
        ids = [f"C{company_counter + k:05d}" for k in range(size)]
        company_counter += size
        clusters.append(ClusterPlan(index=index, company_ids=ids))

    _allocate_people(clusters, config)

    registry = EntityRegistry()
    entity_rng = derive_rng(config.seed, "entities")
    for cluster in clusters:
        holding_scale = "large" if cluster.size >= 10 else "small"
        industry = str(entity_rng.choice(INDUSTRIES))
        for i, company_id in enumerate(cluster.company_ids):
            registry.add_company(
                make_company(
                    company_id,
                    entity_rng,
                    industry=industry,
                    scale=holding_scale if i == 0 else "small",
                )
            )

    influence_rng = derive_rng(config.seed, "influence")
    g2, lp_of = build_influence(
        clusters,
        family_direct_lp_share=config.family_direct_lp_share,
        director_companies_range=config.director_companies_range,
        rng=influence_rng,
        anchor_base=config.anchor_base,
        anchor_divisor=config.anchor_divisor,
    )

    person_rng = derive_rng(config.seed, "persons")
    companies_of_lp: dict[str, list[str]] = {}
    for company, lp in lp_of.items():
        companies_of_lp.setdefault(lp, []).append(company)
    for cluster in clusters:
        for lp_id in cluster.lp_ids:
            registry.add_person(
                make_legal_person(
                    lp_id,
                    tuple(sorted(companies_of_lp.get(lp_id, ()))),
                    person_rng,
                    chairman=lp_id in cluster.family_ids,
                )
            )
        for director_id in cluster.director_ids:
            registry.add_person(make_director(director_id, person_rng))

    all_person_ids = [
        pid for cluster in clusters for pid in (*cluster.lp_ids, *cluster.director_ids)
    ]
    inter_rng = derive_rng(config.seed, "interdependence")
    g1 = build_interdependence(
        clusters, all_person_ids, config.director_interlock_probability, inter_rng
    )

    invest_rng = derive_rng(config.seed, "investment")
    gi = build_investment(
        clusters,
        extra_arc_share=config.investment_extra_arc_share,
        mutual_pairs=config.mutual_investment_pairs,
        rng=invest_rng,
        attach_both_probability=config.dual_holding_attach_both,
    )

    return ProvincialDataset(
        config=config,
        registry=registry,
        interdependence=g1,
        influence=g2,
        investment=gi,
        clusters=clusters,
        lp_of=lp_of,
    )


def _allocate_people(clusters: list[ClusterPlan], config: ProvinceConfig) -> None:
    """Distribute the LP and director budgets across clusters (exact totals)."""
    rng = derive_rng(config.seed, "people-allocation")
    n_companies = config.companies
    f_lo, f_hi = config.family_size_range

    # Legal persons: each cluster needs >= 1; the pool never exceeds the
    # cluster's company count (an LP must serve at least one company).
    lp_quota = [
        max(1, min(c.size, int(round(c.size * config.legal_persons / n_companies))))
        for c in clusters
    ]
    _rebalance(lp_quota, config.legal_persons, caps=[c.size for c in clusters])

    director_quota = [
        int(round(c.size * config.directors / n_companies)) for c in clusters
    ]
    _rebalance(director_quota, config.directors, caps=[3 * c.size for c in clusters])

    lp_counter = 0
    director_counter = 0
    for cluster, lp_n, d_n in zip(clusters, lp_quota, director_quota):
        family_n = min(int(rng.integers(f_lo, f_hi + 1)), lp_n)
        ids = [f"L{lp_counter + k:05d}" for k in range(lp_n)]
        lp_counter += lp_n
        cluster.lp_ids = ids
        cluster.family_ids = ids[:family_n]
        cluster.director_ids = [f"D{director_counter + k:05d}" for k in range(d_n)]
        director_counter += d_n


def _rebalance(quota: list[int], total: int, caps: list[int]) -> None:
    """Adjust ``quota`` in place so it sums to ``total`` within ``caps``."""
    order = sorted(range(len(quota)), key=lambda i: -caps[i])
    guard = 0
    while sum(quota) != total:
        diff = total - sum(quota)
        moved = False
        for i in order:
            if diff > 0 and quota[i] < caps[i]:
                quota[i] += 1
                diff -= 1
                moved = True
            elif diff < 0 and quota[i] > 1:
                quota[i] -= 1
                diff += 1
                moved = True
            if diff == 0:
                break
        guard += 1
        if not moved or guard > 10_000:
            raise RuntimeError(
                "cannot rebalance people quotas: totals are infeasible for the caps"
            )
