"""Interdependence-link (*G1*) generation for the provincial dataset.

Two link kinds arise (Section 3.1's cases): **kinship** ties the members
of each cluster's controlling family together (they will contract into
one family syndicate, the common antecedent of the cluster), and
**interlocking** ties act-together directors of the same cluster.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.config import ClusterPlan
from repro.model.colors import InterdependenceKind
from repro.model.homogeneous import InterdependenceGraph

__all__ = ["build_interdependence"]


def build_interdependence(
    clusters: list[ClusterPlan],
    all_person_ids: list[str],
    interlock_probability: float,
    rng: np.random.Generator,
) -> InterdependenceGraph:
    """Build *G1*: kinship chains per family, sparse director interlocks.

    Every person appears as a node (matching the Fig. 11 caption, which
    counts all 776 directors and 1,350 legal persons); only family
    members and interlocked director pairs carry links.
    """
    g1 = InterdependenceGraph()
    for person_id in all_person_ids:
        g1.add_person(person_id)
    for cluster in clusters:
        family = cluster.family_ids
        for left, right in zip(family, family[1:]):
            g1.add_link(left, right, InterdependenceKind.KINSHIP)
        directors = cluster.director_ids
        # Disjoint pairs only: interlocks form small syndicates, not one
        # giant merged director blob.
        for i in range(0, len(directors) - 1, 2):
            if rng.random() < interlock_probability:
                g1.add_link(
                    directors[i], directors[i + 1], InterdependenceKind.INTERLOCKING
                )
    return g1
