"""Paper fixtures: Cases 1-3 (Figs. 1-3) and the worked example (Figs. 7-10).

These fixtures serve as golden tests — the worked example must reproduce
the paper's 15-entry component pattern base and its three suspicious
groups exactly — and as the data behind ``examples/case_studies.py`` and
``examples/worked_example.py``.

Each case is available in two forms:

* an **abstract** TPIIN matching the paper's contracted figure (e.g.
  Fig. 3(a)'s triangle), built directly with the paper's node labels;
* a **source** form: the four homogeneous graphs before fusion (e.g.
  Fig. 7's un-contracted network), for exercising the fusion pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fusion.tpiin import TPIIN
from repro.model.colors import InfluenceKind, InterdependenceKind
from repro.model.homogeneous import (
    InfluenceGraph,
    InterdependenceGraph,
    InvestmentGraph,
    TradingGraph,
)

__all__ = [
    "SourceGraphs",
    "fig6_tpiin",
    "fig8_tpiin",
    "fig7_source_graphs",
    "case1_tpiin",
    "case1_source_graphs",
    "case2_tpiin",
    "case3_tpiin",
    "FIG10_EXPECTED_PATTERNS",
    "FIG10_EXPECTED_GROUPS",
]


@dataclass
class SourceGraphs:
    """The four homogeneous graphs feeding the fusion pipeline."""

    interdependence: InterdependenceGraph
    influence: InfluenceGraph
    investment: InvestmentGraph
    trading: TradingGraph


def fig6_tpiin() -> TPIIN:
    """The example TPIIN of Fig. 6.

    ``P1`` influences ``C1`` and ``C3``; ``C1`` influences (invests in)
    ``C2``; trading runs ``C2 -> C3``.  The suspicious relationship is
    between ``C2`` and ``C3`` behind the trading arc, certified by the
    antecedent ``P1``.
    """
    return TPIIN.build(
        persons=["P1"],
        companies=["C1", "C2", "C3"],
        influence=[("P1", "C1"), ("P1", "C3"), ("C1", "C2")],
        trading=[("C2", "C3")],
    )


def fig8_tpiin() -> TPIIN:
    """The contracted worked-example TPIIN of Fig. 8.

    Node labels follow the paper: ``L1`` is the syndicate of the kin
    legal persons *L6*/*LB* of Fig. 7 and ``B2`` the syndicate of the
    interlocked directors *B5*/*B6*.  Running Algorithm 2 on this network
    yields exactly the 15 component patterns of Fig. 10, and matching
    yields the paper's three simple suspicious groups.
    """
    return TPIIN.build(
        persons=["L1", "L2", "L3", "L4", "L5", "B1", "B2"],
        companies=["C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8"],
        influence=[
            ("L1", "C1"),
            ("L1", "C2"),
            ("L1", "C4"),
            ("C1", "C3"),
            ("C2", "C5"),
            ("L2", "C3"),
            ("L3", "C5"),
            ("B1", "C5"),
            ("B1", "C6"),
            ("L4", "C6"),
            ("L4", "C7"),
            ("B2", "C7"),
            ("B2", "C8"),
            ("L5", "C8"),
        ],
        trading=[
            ("C5", "C6"),
            ("C5", "C7"),
            ("C3", "C5"),
            ("C7", "C8"),
            ("C8", "C4"),
        ],
    )


#: The Fig. 10 component pattern base, rendered exactly as the paper
#: lists it (ordering differs; tests compare as sets).
FIG10_EXPECTED_PATTERNS: frozenset[str] = frozenset(
    {
        "L1, C2, C5 -> C6",
        "L1, C2, C5 -> C7",
        "L1, C1, C3 -> C5",
        "L1, C4",
        "L3, C5 -> C7",
        "L3, C5 -> C6",
        "L2, C3 -> C5",
        "B1, C5 -> C6",
        "B1, C5 -> C7",
        "B1, C6",
        "L4, C6",
        "L4, C7 -> C8",
        "B2, C7 -> C8",
        "B2, C8 -> C4",
        "L5, C8 -> C4",
    }
)

#: The paper's three suspicious groups, as (sorted member set, antecedent).
FIG10_EXPECTED_GROUPS: frozenset[tuple[frozenset[str], str]] = frozenset(
    {
        (frozenset({"L1", "C1", "C2", "C3", "C5"}), "L1"),
        (frozenset({"B1", "C5", "C6"}), "B1"),
        (frozenset({"B2", "C7", "C8"}), "B2"),
    }
)


def fig7_source_graphs() -> SourceGraphs:
    """The un-contracted network of Fig. 7 as homogeneous source graphs.

    Persons *L6* and *LB* are kin (they fuse into the paper's ``L1``);
    directors *B5* and *B6* interlock (they fuse into ``B2``).  Fusing
    these graphs yields a TPIIN isomorphic to :func:`fig8_tpiin` up to
    the generated syndicate identifiers.
    """
    g1 = InterdependenceGraph()
    g1.add_link("L6", "LB", InterdependenceKind.KINSHIP)
    g1.add_link("B5", "B6", InterdependenceKind.INTERLOCKING)

    g2 = InfluenceGraph()
    g2.add_influence("L6", "C1", InfluenceKind.CEO_OF, legal_person=True)
    g2.add_influence("LB", "C2", InfluenceKind.CEO_OF, legal_person=True)
    g2.add_influence("LB", "C4", InfluenceKind.CEO_OF, legal_person=True)
    g2.add_influence("L2", "C3", InfluenceKind.CEO_OF, legal_person=True)
    g2.add_influence("L3", "C5", InfluenceKind.CEO_OF, legal_person=True)
    g2.add_influence("B1", "C5", InfluenceKind.D_OF)
    g2.add_influence("B1", "C6", InfluenceKind.D_OF)
    g2.add_influence("L4", "C6", InfluenceKind.CEO_OF, legal_person=True)
    g2.add_influence("L4", "C7", InfluenceKind.CEO_OF, legal_person=True)
    g2.add_influence("B5", "C7", InfluenceKind.D_OF)
    g2.add_influence("B6", "C8", InfluenceKind.D_OF)
    g2.add_influence("L5", "C8", InfluenceKind.CEO_OF, legal_person=True)

    gi = InvestmentGraph()
    gi.add_investment("C1", "C3")
    gi.add_investment("C2", "C5")

    g4 = TradingGraph()
    for seller, buyer in [
        ("C5", "C6"),
        ("C5", "C7"),
        ("C3", "C5"),
        ("C7", "C8"),
        ("C8", "C4"),
    ]:
        g4.add_trade(seller, buyer)
    return SourceGraphs(g1, g2, gi, g4)


def case1_tpiin() -> TPIIN:
    """Case 1 (Fig. 1): kin legal persons behind a producer/seller split.

    After merging the brother legal persons *L1*/*L2* into the syndicate
    ``L'``, the proof chain is the trail pair ``(L' -> C1 -> C3)`` and
    ``(L' -> C2)`` behind the IAT ``C3 -> C2``.
    """
    return TPIIN.build(
        persons=["L'"],
        companies=["C1", "C2", "C3"],
        influence=[("L'", "C1"), ("L'", "C2"), ("C1", "C3")],
        trading=[("C3", "C2")],
    )


def case1_source_graphs() -> SourceGraphs:
    """Case 1 before contraction: brothers L1 and L2 as separate nodes."""
    g1 = InterdependenceGraph()
    g1.add_link("L1", "L2", InterdependenceKind.KINSHIP)
    g2 = InfluenceGraph()
    g2.add_influence("L1", "C1", InfluenceKind.CEO_OF, legal_person=True)
    g2.add_influence("L2", "C2", InfluenceKind.CEO_OF, legal_person=True)
    g2.add_influence("L1", "C3", InfluenceKind.CB_OF, legal_person=True)
    gi = InvestmentGraph()
    gi.add_investment("C1", "C3")  # C1 holds all shares of C3
    g4 = TradingGraph()
    g4.add_trade("C3", "C2")  # all C3 products sold to C2
    g4.add_trade("C1", "C3")  # C1 supplies raw materials to C3
    return SourceGraphs(g1, g2, gi, g4)


def case2_tpiin() -> TPIIN:
    """Case 2 (Figs. 2(a)/3(a)): one investor behind both trade parties.

    ``C4`` partially owns ``C5`` and ``C6``; the export ``C5 -> C6`` at
    below-market price is the IAT.  The triangle pattern has company
    antecedent ``C4``.
    """
    return TPIIN.build(
        companies=["C4", "C5", "C6"],
        influence=[("C4", "C5"), ("C4", "C6")],
        trading=[("C5", "C6")],
    )


def case3_tpiin() -> TPIIN:
    """Case 3 (Figs. 2(b)/3(b)): interlocked controlling investors.

    ``B`` is the syndicate of the act-together investors *B3*, *B4*,
    *B5*, controlling ``C7`` and ``C8`` (and joint venture ``C9``); the
    BMX export ``C7 -> C8`` is the IAT.
    """
    return TPIIN.build(
        persons=["B"],
        companies=["C7", "C8", "C9"],
        influence=[("B", "C7"), ("B", "C8"), ("B", "C9")],
        trading=[("C7", "C8")],
    )
