"""Deterministic random-stream management for the data generators.

Every generator derives its own independent stream from a single root
seed plus a string label, so that (a) a dataset is fully reproducible
from one integer, and (b) changing one generation stage (say, the
trading network) never perturbs another (say, the kinship links).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_rng", "derive_seed"]


def derive_seed(root_seed: int, label: str) -> int:
    """A stable 64-bit child seed from ``(root_seed, label)``.

    Uses BLAKE2b rather than Python's salted ``hash()`` so the derivation
    is stable across processes and interpreter runs.
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{label}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def derive_rng(root_seed: int, label: str) -> np.random.Generator:
    """An independent :class:`numpy.random.Generator` for one stage."""
    return np.random.default_rng(derive_seed(root_seed, label))
