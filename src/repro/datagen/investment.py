"""Investment-graph (*GI*/*G3*) generation for the provincial dataset.

Clusters of six or more companies use a **conglomerate layout**::

    M (management co.)  ->  H1, H2 (twin holdings)  ->  subsidiaries

Each subsidiary attaches to one or both holdings; a small number of
deeper forward cross arcs adds chain texture.  The twin-holding diamond
is what produces interior-disjoint trail pairs (simple groups), while
every path from the management company shares ``M`` (complex groups) —
the balance behind Table 1's stable complex-to-simple ratio (see the
calibration notes in DESIGN.md).

Smaller clusters use a plain investment tree under a single holding.
Index order keeps every cluster acyclic; optional mutual-investment
pairs inject cycles to exercise the SCS-contraction path (the paper's
province had none).
"""

from __future__ import annotations

import numpy as np

from repro.datagen.config import ClusterPlan
from repro.model.homogeneous import InvestmentGraph

__all__ = ["build_investment", "CONGLOMERATE_MIN_SIZE"]

#: Clusters at least this large get the M + twin-holding layout.
CONGLOMERATE_MIN_SIZE = 6


def build_investment(
    clusters: list[ClusterPlan],
    *,
    extra_arc_share: float,
    mutual_pairs: int,
    rng: np.random.Generator,
    attach_both_probability: float = 0.6,
) -> InvestmentGraph:
    gi = InvestmentGraph()
    for cluster in clusters:
        for company_id in cluster.company_ids:
            gi.add_company(company_id)
        ids = cluster.company_ids
        n = len(ids)
        if n < 2:
            continue
        if n >= CONGLOMERATE_MIN_SIZE:
            management, h1, h2 = ids[0], ids[1], ids[2]
            gi.add_investment(management, h1)
            gi.add_investment(management, h2)
            indegree = {cid: 0 for cid in ids}
            indegree[h1] = indegree[h2] = 1
            for cid in ids[3:]:
                if rng.random() < attach_both_probability:
                    gi.add_investment(h1, cid)
                    gi.add_investment(h2, cid)
                    indegree[cid] = 2
                else:
                    holding = h1 if rng.random() < 0.5 else h2
                    gi.add_investment(holding, cid)
                    indegree[cid] = 1
            # Deeper forward cross arcs (subsidiary -> later subsidiary),
            # indegree-capped so path multiplicity stays bounded.
            extra = int(round((n - 3) * extra_arc_share))
            for _ in range(max(0, extra)):
                if n <= 4:
                    break
                i = int(rng.integers(3, n - 1))
                j = int(rng.integers(i + 1, n))
                if indegree[ids[j]] >= 3:
                    continue
                if gi.add_investment(ids[i], ids[j]):
                    indegree[ids[j]] += 1
        else:
            # Small group: plain tree under the first company.
            for k in range(1, n):
                parent = 0 if rng.random() < 0.6 else int(rng.integers(0, k))
                gi.add_investment(ids[parent], ids[k])

    # Cycles on demand (exercises Tarjan + SCS contraction downstream).
    eligible = [c for c in clusters if c.size >= 3]
    for k in range(mutual_pairs):
        if not eligible:
            break
        cluster = eligible[k % len(eligible)]
        ids = cluster.company_ids
        i = int(rng.integers(1, len(ids)))
        j = int(rng.integers(1, len(ids)))
        if i == j:
            j = 1 if i != 1 else 2
        lo, hi = min(i, j), max(i, j)
        gi.add_investment(ids[lo], ids[hi])
        gi.add_investment(ids[hi], ids[lo])
    return gi
