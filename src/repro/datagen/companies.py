"""Company-entity factories for the synthetic generators."""

from __future__ import annotations

import zlib

import numpy as np

from repro.model.entities import Company

__all__ = ["make_company", "INDUSTRIES", "REGIONS", "derive_registered_capital"]

#: Industry labels drive the ITE-phase comparables: the arm's-length
#: tests compare a transaction against its industry's margin profile.
INDUSTRIES = (
    "manufacturing",
    "chemicals",
    "electronics",
    "textiles",
    "wholesale",
    "retail",
    "logistics",
    "pharmaceuticals",
    "machinery",
    "food",
)

#: ``domestic`` plus cross-border regions (Cases 2-3 are cross-border).
REGIONS = ("domestic", "hongkong", "usa", "europe", "singapore")

#: Sampling weights: most taxpayers in a provincial set are domestic.
_REGION_WEIGHTS = (0.90, 0.04, 0.03, 0.02, 0.01)


def derive_registered_capital(company_id: str, scale: str = "small") -> float:
    """Deterministic declared capital for a synthetic company.

    Derived from a hash of the id rather than the generator's ``rng``
    stream so that adding capital to existing datasets does not shift
    any seed-stable draw that follows (region, roles, trading arcs).
    """
    base = 5000.0 if scale == "large" else 800.0
    spread = zlib.crc32(company_id.encode("utf-8")) % 1000 / 1000.0
    return round(base * (0.5 + 1.5 * spread), 2)


def make_company(
    company_id: str,
    rng: np.random.Generator,
    *,
    industry: str | None = None,
    scale: str = "small",
) -> Company:
    """A company with sampled industry and region."""
    if industry is None:
        industry = str(rng.choice(INDUSTRIES))
    region = str(rng.choice(REGIONS, p=_REGION_WEIGHTS))
    return Company(
        company_id=company_id,
        name=f"{company_id} {industry.title()} Co.",
        industry=industry,
        region=region,
        scale=scale,
        registered_capital=derive_registered_capital(company_id, scale),
    )
