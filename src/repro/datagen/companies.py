"""Company-entity factories for the synthetic generators."""

from __future__ import annotations

import numpy as np

from repro.model.entities import Company

__all__ = ["make_company", "INDUSTRIES", "REGIONS"]

#: Industry labels drive the ITE-phase comparables: the arm's-length
#: tests compare a transaction against its industry's margin profile.
INDUSTRIES = (
    "manufacturing",
    "chemicals",
    "electronics",
    "textiles",
    "wholesale",
    "retail",
    "logistics",
    "pharmaceuticals",
    "machinery",
    "food",
)

#: ``domestic`` plus cross-border regions (Cases 2-3 are cross-border).
REGIONS = ("domestic", "hongkong", "usa", "europe", "singapore")

#: Sampling weights: most taxpayers in a provincial set are domestic.
_REGION_WEIGHTS = (0.90, 0.04, 0.03, 0.02, 0.01)


def make_company(
    company_id: str,
    rng: np.random.Generator,
    *,
    industry: str | None = None,
    scale: str = "small",
) -> Company:
    """A company with sampled industry and region."""
    if industry is None:
        industry = str(rng.choice(INDUSTRIES))
    region = str(rng.choice(REGIONS, p=_REGION_WEIGHTS))
    return Company(
        company_id=company_id,
        name=f"{company_id} {industry.title()} Co.",
        industry=industry,
        region=region,
        scale=scale,
    )
