"""Person-entity factories for the synthetic generators."""

from __future__ import annotations

import numpy as np

from repro.model.entities import Person
from repro.model.roles import Role

__all__ = ["make_legal_person", "make_director"]

# Small pinyin pools; names are cosmetic (reports and examples only).
_SURNAMES = (
    "Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Zhao", "Huang",
    "Zhou", "Wu", "Xu", "Sun", "Hu", "Zhu", "Gao", "Lin",
)
_GIVEN_NAMES = (
    "Wei", "Fang", "Min", "Jing", "Lei", "Qiang", "Yan", "Jun",
    "Ying", "Hua", "Ping", "Gang", "Na", "Bo", "Xin", "Tao",
)


def _name(rng: np.random.Generator) -> str:
    return f"{rng.choice(_SURNAMES)} {rng.choice(_GIVEN_NAMES)}"


def make_legal_person(
    person_id: str,
    companies: tuple[str, ...],
    rng: np.random.Generator,
    *,
    chairman: bool = False,
) -> Person:
    """A legal person: CEO (optionally also chairman) of its companies."""
    role = Role.CEO | Role.CB if chairman else Role.CEO | Role.D
    return Person(
        person_id=person_id,
        name=_name(rng),
        role=role,
        legal_person_of=companies,
    )


def make_director(person_id: str, rng: np.random.Generator) -> Person:
    """A board director without a legal-person designation."""
    return Person(person_id=person_id, name=_name(rng), role=Role.D)
