"""Planted evasion rings: graph-level ground truth for recovery tests.

Section 3.2 catalogues the shapes suspicious groups take — triangle,
quadrilateral, pentagon and hexagon (Fig. 3) plus the
interlocking-syndicate variant (Fig. 3(b)).  This module injects fresh,
known instances of each shape into existing source networks, so that an
end-to-end run can measure *structure recovery*: every planted ring
must come back as a simple suspicious group with exactly the planted
membership, regardless of how much background network surrounds it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataGenError
from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import Node
from repro.mining.detector import DetectionResult
from repro.model.colors import InfluenceKind, InterdependenceKind
from repro.model.entities import Company, EntityRegistry
from repro.model.homogeneous import (
    InfluenceGraph,
    InterdependenceGraph,
    InvestmentGraph,
    TradingGraph,
)

__all__ = [
    "PlantedHousehold",
    "PlantedRing",
    "PlantedTraderChain",
    "PlantedTradingCycle",
    "RING_SHAPES",
    "plant_circular_rings",
    "plant_evasion_rings",
    "plant_missing_trader_chains",
    "plant_shared_households",
    "recovered_rings",
]

#: The group shapes of Fig. 3, by total node count of the simple group.
RING_SHAPES = (
    "triangle",
    "interlocking",  # Fig. 3(b): syndicate antecedent
    "quadrilateral",
    "pentagon",
    "hexagon",
)


@dataclass(frozen=True, slots=True)
class PlantedRing:
    """One injected evasion structure and its expected detection."""

    ring_id: str
    shape: str
    persons: tuple[str, ...]  # raw persons (pre-contraction)
    companies: tuple[str, ...]
    trading_arc: tuple[str, str]

    def expected_members(self, tpiin: TPIIN) -> frozenset[Node]:
        """The group membership after fusion (persons may have merged)."""
        mapped = {tpiin.node_map.get(p, p) for p in self.persons}
        return frozenset(mapped) | frozenset(self.companies)


def plant_evasion_rings(
    interdependence: InterdependenceGraph,
    influence: InfluenceGraph,
    investment: InvestmentGraph,
    trading: TradingGraph,
    *,
    count: int,
    shapes: tuple[str, ...] = RING_SHAPES,
    rng: np.random.Generator | None = None,
    id_prefix: str = "RING",
) -> list[PlantedRing]:
    """Inject ``count`` rings (cycling through ``shapes``) in place.

    Every ring uses fresh, prefixed person/company identifiers, so the
    planted structures are disjoint from the background network and
    from each other: the planted trading arc's *minimal* proof chain is
    exactly the planted ring.
    """
    if count < 0:
        raise DataGenError("count must be non-negative")
    unknown = set(shapes) - set(RING_SHAPES)
    if unknown:
        raise DataGenError(f"unknown ring shapes: {sorted(unknown)}")
    rng = rng if rng is not None else np.random.default_rng(0)

    rings: list[PlantedRing] = []
    for index in range(count):
        shape = shapes[index % len(shapes)]
        tag = f"{id_prefix}{index:03d}"
        builder = _BUILDERS[shape]
        rings.append(builder(tag, interdependence, influence, investment, trading))
    return rings


def _lp(influence: InfluenceGraph, person: str, company: str) -> None:
    influence.add_influence(person, company, InfluenceKind.CEO_OF, legal_person=True)


def _director(influence: InfluenceGraph, person: str, company: str) -> None:
    influence.add_influence(person, company, InfluenceKind.D_OF)


def _triangle(
    tag: str,
    g1: InterdependenceGraph,
    g2: InfluenceGraph,
    gi: InvestmentGraph,
    g4: TradingGraph,
) -> PlantedRing:
    """Fig. 3(a) with a person antecedent: P -> X, P -> Y, trade X -> Y."""
    p, x, y = f"{tag}_P", f"{tag}_X", f"{tag}_Y"
    _lp(g2, p, x)
    _lp(g2, p, y)
    g4.add_trade(x, y)
    return PlantedRing(tag, "triangle", (p,), (x, y), (x, y))


def _interlocking(
    tag: str,
    g1: InterdependenceGraph,
    g2: InfluenceGraph,
    gi: InvestmentGraph,
    g4: TradingGraph,
) -> PlantedRing:
    """Fig. 3(b): interlocked directors merge into the antecedent B."""
    b1, b2 = f"{tag}_B1", f"{tag}_B2"
    x, y = f"{tag}_X", f"{tag}_Y"
    g1.add_link(b1, b2, InterdependenceKind.INTERLOCKING)
    _lp(g2, b1, x)
    _lp(g2, b2, y)
    g4.add_trade(x, y)
    return PlantedRing(tag, "interlocking", (b1, b2), (x, y), (x, y))


def _quadrilateral(
    tag: str,
    g1: InterdependenceGraph,
    g2: InfluenceGraph,
    gi: InvestmentGraph,
    g4: TradingGraph,
) -> PlantedRing:
    """P -> H -> X (investment), P -> Y; trade X -> Y."""
    p = f"{tag}_P"
    h, x, y = f"{tag}_H", f"{tag}_X", f"{tag}_Y"
    _lp(g2, p, h)
    _lp(g2, p, y)
    _lp(g2, f"{tag}_LX", x)  # x needs its own LP; not part of the ring
    gi.add_investment(h, x)
    g4.add_trade(x, y)
    return PlantedRing(tag, "quadrilateral", (p,), (h, x, y), (x, y))


def _pentagon(
    tag: str,
    g1: InterdependenceGraph,
    g2: InfluenceGraph,
    gi: InvestmentGraph,
    g4: TradingGraph,
) -> PlantedRing:
    """P -> H1 -> X and P -> H2 -> Y; trade X -> Y."""
    p = f"{tag}_P"
    h1, h2, x, y = (f"{tag}_H1", f"{tag}_H2", f"{tag}_X", f"{tag}_Y")
    _lp(g2, p, h1)
    _lp(g2, p, h2)
    _lp(g2, f"{tag}_LX", x)
    _lp(g2, f"{tag}_LY", y)
    gi.add_investment(h1, x)
    gi.add_investment(h2, y)
    g4.add_trade(x, y)
    return PlantedRing(tag, "pentagon", (p,), (h1, h2, x, y), (x, y))


def _hexagon(
    tag: str,
    g1: InterdependenceGraph,
    g2: InfluenceGraph,
    gi: InvestmentGraph,
    g4: TradingGraph,
) -> PlantedRing:
    """P -> H1 -> H2 -> X and P -> H3 -> Y; trade X -> Y."""
    p = f"{tag}_P"
    h1, h2, h3 = f"{tag}_H1", f"{tag}_H2", f"{tag}_H3"
    x, y = f"{tag}_X", f"{tag}_Y"
    _lp(g2, p, h1)
    _lp(g2, p, h3)
    _lp(g2, f"{tag}_LH2", h2)
    _lp(g2, f"{tag}_LX", x)
    _lp(g2, f"{tag}_LY", y)
    gi.add_investment(h1, h2)
    gi.add_investment(h2, x)
    gi.add_investment(h3, y)
    g4.add_trade(x, y)
    return PlantedRing(tag, "hexagon", (p,), (h1, h2, h3, x, y), (x, y))


_BUILDERS = {
    "triangle": _triangle,
    "interlocking": _interlocking,
    "quadrilateral": _quadrilateral,
    "pentagon": _pentagon,
    "hexagon": _hexagon,
}


def recovered_rings(
    rings: list[PlantedRing], result: DetectionResult, tpiin: TPIIN
) -> dict[str, bool]:
    """Which planted rings came back as a group with exact membership.

    A ring is recovered when its trading arc is suspicious *and* some
    simple group over that arc has exactly the planted member set
    (after mapping merged persons through the fusion node map).
    """
    recovery: dict[str, bool] = {}
    for ring in rings:
        expected = ring.expected_members(tpiin)
        groups = result.groups_for_arc(ring.trading_arc)
        recovery[ring.ring_id] = any(
            group.is_simple and group.members == expected for group in groups
        )
    return recovery


# ---------------------------------------------------------------------------
# Planted cases for the repro.detectors portfolio (ground truth for the
# precision/recall acceptance tests of docs/DETECTORS.md).


@dataclass(frozen=True, slots=True)
class PlantedTradingCycle:
    """One injected circular-trading ring (a closed trading cycle)."""

    cycle_id: str
    companies: tuple[str, ...]

    def expected_members(self, tpiin: TPIIN) -> frozenset[Node]:
        return frozenset(tpiin.node_map.get(c, c) for c in self.companies)


def plant_circular_rings(
    interdependence: InterdependenceGraph,
    influence: InfluenceGraph,
    investment: InvestmentGraph,
    trading: TradingGraph,
    *,
    count: int,
    size: int = 4,
    id_prefix: str = "CYC",
) -> list[PlantedTradingCycle]:
    """Inject ``count`` closed trading cycles of ``size`` companies each.

    Every planted company carries its own unrelated legal person, so the
    rings are invisible to the IAT miner (no shared antecedent) and are
    recoverable only by the ``circular-trading`` detector.
    """
    if count < 0:
        raise DataGenError("count must be non-negative")
    if size < 2:
        raise DataGenError(f"cycle size must be >= 2, got {size}")
    cycles: list[PlantedTradingCycle] = []
    for index in range(count):
        tag = f"{id_prefix}{index:03d}"
        companies = tuple(f"{tag}_C{i}" for i in range(size))
        for i, company in enumerate(companies):
            _lp(influence, f"{tag}_L{i}", company)
        for i, seller in enumerate(companies):
            trading.add_trade(seller, companies[(i + 1) % size])
        cycles.append(PlantedTradingCycle(tag, companies))
    return cycles


@dataclass(frozen=True, slots=True)
class PlantedTraderChain:
    """One injected missing-trader hub with its counterparties."""

    chain_id: str
    hub: str
    suppliers: tuple[str, ...]
    buyers: tuple[str, ...]

    def expected_members(self, tpiin: TPIIN) -> frozenset[Node]:
        nodes = (self.hub, *self.suppliers, *self.buyers)
        return frozenset(tpiin.node_map.get(c, c) for c in nodes)


def plant_missing_trader_chains(
    interdependence: InterdependenceGraph,
    influence: InfluenceGraph,
    investment: InvestmentGraph,
    trading: TradingGraph,
    *,
    count: int,
    fan_in: int = 4,
    fan_out: int = 3,
    registry: EntityRegistry | None = None,
    hub_capital: float = 100.0,
    counterparty_capital: float = 50_000.0,
    id_prefix: str = "MT",
) -> list[PlantedTraderChain]:
    """Inject ``count`` missing-trader conduits (suppliers -> hub -> buyers).

    The hub is a thin shell: when a ``registry`` is supplied it is
    registered with ``hub_capital`` declared capital while its
    well-capitalized counterparties get ``counterparty_capital``, giving
    the ``missing-trader`` detector its capacity-mismatch signal.
    """
    if count < 0:
        raise DataGenError("count must be non-negative")
    if fan_in < 1 or fan_out < 1:
        raise DataGenError("fan_in and fan_out must be >= 1")
    chains: list[PlantedTraderChain] = []
    for index in range(count):
        tag = f"{id_prefix}{index:03d}"
        hub = f"{tag}_HUB"
        suppliers = tuple(f"{tag}_S{i}" for i in range(fan_in))
        buyers = tuple(f"{tag}_B{i}" for i in range(fan_out))
        _lp(influence, f"{tag}_LH", hub)
        for i, supplier in enumerate(suppliers):
            _lp(influence, f"{tag}_LS{i}", supplier)
            trading.add_trade(supplier, hub)
        for i, buyer in enumerate(buyers):
            _lp(influence, f"{tag}_LB{i}", buyer)
            trading.add_trade(hub, buyer)
        if registry is not None:
            registry.add_company(
                Company(
                    company_id=hub,
                    name=f"{hub} Trading Co.",
                    industry="wholesale",
                    registered_capital=hub_capital,
                )
            )
            for counterparty in (*suppliers, *buyers):
                registry.add_company(
                    Company(
                        company_id=counterparty,
                        name=f"{counterparty} Co.",
                        industry="wholesale",
                        registered_capital=counterparty_capital,
                    )
                )
        chains.append(PlantedTraderChain(tag, hub, suppliers, buyers))
    return chains


@dataclass(frozen=True, slots=True)
class PlantedHousehold:
    """One injected kinship syndicate controlling a trading cluster."""

    household_id: str
    persons: tuple[str, ...]
    companies: tuple[str, ...]

    def expected_members(self, tpiin: TPIIN) -> frozenset[Node]:
        mapped = {tpiin.node_map.get(p, p) for p in self.persons}
        return frozenset(mapped) | {
            tpiin.node_map.get(c, c) for c in self.companies
        }


def plant_shared_households(
    interdependence: InterdependenceGraph,
    influence: InfluenceGraph,
    investment: InvestmentGraph,
    trading: TradingGraph,
    *,
    count: int,
    persons: int = 3,
    companies: int = 4,
    id_prefix: str = "HH",
) -> list[PlantedHousehold]:
    """Inject ``count`` family syndicates running self-trading clusters.

    Each household is a kinship chain of ``persons`` members holding the
    legal-person seats of ``companies`` companies (round-robin) that
    trade in a closed internal ring — after fusion the chain contracts
    into one syndicate antecedent the ``shared-household`` detector
    reads back out of the registry.
    """
    if count < 0:
        raise DataGenError("count must be non-negative")
    if persons < 2:
        raise DataGenError(f"a household needs >= 2 persons, got {persons}")
    if companies < 2:
        raise DataGenError(f"a household needs >= 2 companies, got {companies}")
    households: list[PlantedHousehold] = []
    for index in range(count):
        tag = f"{id_prefix}{index:03d}"
        member_ids = tuple(f"{tag}_P{i}" for i in range(persons))
        company_ids = tuple(f"{tag}_C{i}" for i in range(companies))
        for left, right in zip(member_ids, member_ids[1:]):
            interdependence.add_link(left, right, InterdependenceKind.KINSHIP)
        for i, company in enumerate(company_ids):
            _lp(influence, member_ids[i % persons], company)
        for i, seller in enumerate(company_ids):
            trading.add_trade(seller, company_ids[(i + 1) % companies])
        households.append(PlantedHousehold(tag, member_ids, company_ids))
    return households
