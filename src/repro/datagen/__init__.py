"""Synthetic taxpayer-network generation and the paper's fixtures."""

from repro.datagen.cases import (
    FIG10_EXPECTED_GROUPS,
    FIG10_EXPECTED_PATTERNS,
    SourceGraphs,
    case1_source_graphs,
    case1_tpiin,
    case2_tpiin,
    case3_tpiin,
    fig6_tpiin,
    fig7_source_graphs,
    fig8_tpiin,
)
from repro.datagen.clusters import ordered_pair_share, plan_cluster_sizes
from repro.datagen.config import (
    PAPER_TRADING_PROBABILITIES,
    ProvinceConfig,
    TradingConfig,
)
from repro.datagen.planted import (
    PlantedRing,
    RING_SHAPES,
    plant_evasion_rings,
    recovered_rings,
)
from repro.datagen.province import ProvincialDataset, generate_province
from repro.datagen.trading import random_trading_arcs, random_trading_graph

__all__ = [
    "FIG10_EXPECTED_GROUPS",
    "FIG10_EXPECTED_PATTERNS",
    "PAPER_TRADING_PROBABILITIES",
    "PlantedRing",
    "RING_SHAPES",
    "ProvinceConfig",
    "ProvincialDataset",
    "SourceGraphs",
    "TradingConfig",
    "case1_source_graphs",
    "case1_tpiin",
    "case2_tpiin",
    "case3_tpiin",
    "fig6_tpiin",
    "fig7_source_graphs",
    "fig8_tpiin",
    "generate_province",
    "ordered_pair_share",
    "plant_evasion_rings",
    "recovered_rings",
    "plan_cluster_sizes",
    "random_trading_arcs",
    "random_trading_graph",
]
