"""Ground-truth scoring of detector findings against planted cases.

The planted-case generators (:mod:`repro.datagen.planted`) know exactly
which member sets a detector should recover; :func:`accuracy` turns a
findings list plus those expected sets into precision/recall, the
acceptance metric of the detector test-suite (>= 0.9 on every planted
scenario).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.detectors.base import Finding
from repro.errors import MiningError

__all__ = ["AccuracyReport", "accuracy"]


@dataclass(frozen=True, slots=True)
class AccuracyReport:
    """Precision/recall of a findings list against planted cases."""

    true_positives: int
    false_positives: int
    false_negatives: int
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def summary(self) -> str:
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"(tp={self.true_positives} fp={self.false_positives} "
            f"fn={self.false_negatives})"
        )


def accuracy(
    expected: Sequence[frozenset[str] | set[str]],
    findings: Iterable[Finding],
    *,
    require: str = "subset",
) -> AccuracyReport:
    """Score ``findings`` against the ``expected`` planted member sets.

    A finding matches a planted case when the case's members are a
    subset of the finding's (``require="subset"``, the default — a
    detector may legitimately pull extra context nodes such as
    counterparties into a finding) or exactly equal
    (``require="exact"``).  Precision is the fraction of findings that
    match some case (vacuously 1.0 with no findings); recall is the
    fraction of cases recovered by some finding.
    """
    if require not in ("subset", "exact"):
        raise MiningError(f"require must be 'subset' or 'exact', got {require!r}")
    cases = [frozenset(str(member) for member in case) for case in expected]
    matched_cases: set[int] = set()
    true_positives = 0
    false_positives = 0
    for finding in findings:
        members = frozenset(str(member) for member in finding.member_set)
        hit = False
        for index, case in enumerate(cases):
            ok = case == members if require == "exact" else case <= members
            if ok:
                matched_cases.add(index)
                hit = True
        if hit:
            true_positives += 1
        else:
            false_positives += 1
    found = true_positives + false_positives
    false_negatives = len(cases) - len(matched_cases)
    return AccuracyReport(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
        precision=true_positives / found if found else 1.0,
        recall=len(matched_cases) / len(cases) if cases else 1.0,
    )
