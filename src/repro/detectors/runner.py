"""The detector portfolio driver: one freeze, many detectors.

:func:`run_detectors` resolves a selection against the process-wide
registry, builds **one** shared :class:`~repro.detectors.base.DetectionContext`
(so every detector reads the same frozen trading view — expensive
supporting indexes are computed once, not per detector), executes each
detector under its own trace span, meters every run through
:mod:`repro.obs`, and merges the outcomes into a per-detector-keyed
:class:`~repro.detectors.base.FindingsReport`.
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping

from repro.detectors.base import (
    DetectionContext,
    Detector,
    DetectorRun,
    FindingsReport,
)
from repro.detectors.iat import IATConfig, IATGroupDetector
from repro.detectors.registry import DetectorRegistry, get_detector_registry
from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.mining.options import DetectOptions, TraceSpec
from repro.obs.registry import get_registry
from repro.obs.tracing import NULL_TRACER, Tracer, TracerLike

__all__ = ["run_detectors"]

_RUN_BUCKETS_MS = (1.0, 5.0, 25.0, 100.0, 250.0, 1000.0, 5000.0, 30000.0)


def run_detectors(
    tpiin: TPIIN,
    detectors: "str | Iterable[str]" = "all",
    *,
    configs: Mapping[str, Mapping[str, object]] | None = None,
    registry: DetectorRegistry | None = None,
    options: DetectOptions | None = None,
    trace: TraceSpec = False,
) -> FindingsReport:
    """Run a selection of registered detectors over one shared graph.

    Parameters
    ----------
    tpiin:
        The fused graph every detector reads (never mutated).
    detectors:
        A registry name, an iterable of names, or ``"all"``.
    configs:
        Optional per-detector constructor overrides, keyed by detector
        name: ``{"circular-trading": {"min_balance": 0.8}}``.
    registry:
        Detector registry to resolve against (the process-wide one by
        default).
    options:
        When given, the IAT reference detector is configured from these
        engine options (unless ``configs`` overrides it explicitly).
    trace:
        ``True`` collects a span tree onto ``FindingsReport.trace``;
        a caller-owned tracer nests the run under its spans.
    """
    registry = registry if registry is not None else get_detector_registry()
    names = registry.resolve(detectors)
    configs = configs or {}
    for name in configs:
        if name not in names:
            raise MiningError(
                f"config supplied for unselected detector {name!r} "
                f"(selected: {', '.join(names)})"
            )
    tracer = _resolve_tracer(trace)
    metrics = get_registry()
    runs: dict[str, DetectorRun] = {}
    with tracer.span("run_detectors") as root:
        context = DetectionContext(tpiin=tpiin, tracer=tracer)
        for name in names:
            detector = _instantiate(registry, name, configs.get(name), options)
            started = time.perf_counter()
            with tracer.span(f"detector:{name}") as span:
                outcome = detector.run(context)
                if tracer.enabled:
                    span.set(findings=len(outcome.findings), version=detector.version)
            elapsed = time.perf_counter() - started
            metrics.counter(
                "repro_detector_runs_total",
                help="Completed detector runs, by detector.",
                detector=name,
            ).inc()
            metrics.counter(
                "repro_detector_findings_total",
                help="Findings emitted by detector runs.",
                detector=name,
            ).inc(len(outcome.findings))
            metrics.histogram(
                "repro_detector_duration_ms",
                buckets=_RUN_BUCKETS_MS,
                help="Per-detector wall time in milliseconds.",
                detector=name,
            ).observe(elapsed * 1e3)
            runs[name] = DetectorRun(
                name=name,
                version=detector.version,
                findings=tuple(outcome.findings),
                elapsed_seconds=elapsed,
                attributes=dict(outcome.attributes),
                detection=outcome.detection,
            )
        if tracer.enabled:
            root.set(
                detectors=len(runs),
                findings=sum(len(run.findings) for run in runs.values()),
            )
        trace_record = root.record
    return FindingsReport(runs=runs, trace=trace_record)


def _resolve_tracer(trace: TraceSpec) -> TracerLike:
    if trace is True:
        return Tracer()
    if trace is False or trace is None:
        return NULL_TRACER
    return trace


def _instantiate(
    registry: DetectorRegistry,
    name: str,
    overrides: Mapping[str, object] | None,
    options: DetectOptions | None,
) -> Detector:
    """Build the detector instance a portfolio run uses for ``name``.

    Explicit ``configs`` overrides win; otherwise the IAT reference
    detector inherits the caller's engine options so that
    ``detect(..., detectors=...)`` and the CLI keep one source of truth
    for engine selection.
    """
    if overrides is not None:
        cls = registry.load(name)
        return cls(cls.config_type(**overrides))
    if options is not None and name == IATGroupDetector.name:
        return IATGroupDetector(IATConfig.from_options(options))
    return registry.create(name)
