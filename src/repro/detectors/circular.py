"""Circular-trading detector: balanced non-trivial trading cycles.

Circular trading — goods or invoices cycling through a closed chain of
companies to inflate turnover or launder input credits (Mehta et al.,
*Representation Learning on Graphs to Identify Circular Trading in
GST*) — is invisible to the IAT miner unless the ring shares an
antecedent.  This detector finds it structurally: every non-trivial
strongly connected component of the **trading** network (the same
iterative Tarjan kernel the fusion pipeline runs over investment arcs)
is a candidate ring, scored by *flow balance* — in a deliberate
carousel each member passes on roughly what it receives, so the
per-member ratio ``min(in, out) / max(in, out)`` over ring-internal
trades sits near 1, while incidental SCCs in organic trading are lopsided.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detectors.base import (
    DetectionContext,
    DetectorOutcome,
    Finding,
    FrozenTradingView,
)
from repro.errors import MiningError
from repro.graph.digraph import Node
from repro.graph.tarjan import nontrivial_sccs
from repro.model.colors import EColor

__all__ = ["CircularTradingConfig", "CircularTradingDetector"]


@dataclass(frozen=True, slots=True)
class CircularTradingConfig:
    """Knobs of the circular-trading scan.

    ``min_cycle_size`` ignores two-company back-and-forth (common in
    legitimate supplier relationships); ``min_balance`` is the mean
    per-member flow-balance threshold a component must reach to be
    reported as a ring.
    """

    min_cycle_size: int = 3
    min_balance: float = 0.6

    def __post_init__(self) -> None:
        if self.min_cycle_size < 2:
            raise MiningError(
                f"min_cycle_size must be >= 2, got {self.min_cycle_size}"
            )
        if not 0.0 <= self.min_balance <= 1.0:
            raise MiningError(
                f"min_balance must be in [0, 1], got {self.min_balance}"
            )


class CircularTradingDetector:
    """Tarjan SCCs over trading arcs, kept when flow-balanced."""

    name = "circular-trading"
    version = "1.0.0"
    summary = (
        "Closed trading cycles (non-trivial SCCs of the trading network) "
        "whose members pass on roughly what they receive."
    )
    config_type = CircularTradingConfig

    def __init__(self, config: CircularTradingConfig | None = None) -> None:
        self.config = config if config is not None else CircularTradingConfig()

    def run(self, context: DetectionContext) -> DetectorOutcome:
        trading = context.trading
        components = nontrivial_sccs(context.tpiin.graph, EColor.TRADING)
        findings: list[Finding] = []
        for component in components:
            if len(component) < self.config.min_cycle_size:
                continue
            ring = set(component)
            internal: list[tuple[Node, Node]] = [
                (seller, buyer)
                for seller in component
                for buyer in trading.buyers_of(seller)
                if buyer in ring
            ]
            balance = self._flow_balance(component, ring, trading)
            if balance < self.config.min_balance:
                continue
            findings.append(
                Finding(
                    detector=self.name,
                    kind="circular-trading-ring",
                    members=tuple(component),
                    arcs=tuple(internal),
                    score=balance,
                    summary=(
                        f"{len(component)} companies trade in a closed cycle "
                        f"({len(internal)} internal arcs, "
                        f"flow balance {balance:.2f})"
                    ),
                    details=(
                        ("companies", len(component)),
                        ("internal_arcs", len(internal)),
                        ("balance", round(balance, 4)),
                    ),
                )
            )
        findings.sort(key=lambda f: (-f.score, f.members))
        return DetectorOutcome(
            findings=findings,
            attributes={
                "sccs_examined": len(components),
                "rings": len(findings),
            },
        )

    @staticmethod
    def _flow_balance(
        component: list[Node], ring: set[Node], trading: FrozenTradingView
    ) -> float:
        """Mean per-member ``min(in, out) / max(in, out)`` within the ring."""
        total = 0.0
        for node in component:
            out_internal = sum(1 for b in trading.buyers_of(node) if b in ring)
            in_internal = sum(1 for s in trading.sellers_to(node) if s in ring)
            high = max(out_internal, in_internal)
            total += (min(out_internal, in_internal) / high) if high else 0.0
        return total / len(component) if component else 0.0
