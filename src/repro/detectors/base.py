"""Core vocabulary of the detector plugin framework.

The paper mines one pattern — interest-affiliated transaction (IAT)
groups — but a production tax administration runs a *portfolio* of
detectors over the same TPIIN (circular trading, VAT missing traders,
household-controlled syndicates; see docs/DETECTORS.md).  This module
defines the shared contract:

* :class:`Finding` — one typed, scored detection (the common output
  currency of every detector);
* :class:`Detector` — the protocol a pluggable detector implements:
  class-level ``name`` / ``version`` / ``summary`` / ``config_type``
  identity plus a ``run(context)`` method;
* :class:`DetectionContext` — one shared, lazily-frozen view of the
  TPIIN handed to every detector of a portfolio run, so N detectors pay
  for one trading-adjacency freeze instead of N;
* :class:`FindingsReport` — the merged, per-detector-keyed outcome of
  :func:`repro.detectors.runner.run_detectors`.

Detectors receive the TPIIN *read-only*: they must not mutate the graph
or the registry (the context is shared across the whole portfolio run).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import Node
from repro.mining.detector import DetectionResult
from repro.model.colors import VColor
from repro.obs.tracing import NULL_TRACER, Attr, SpanRecord, TracerLike

__all__ = [
    "DetectionContext",
    "Detector",
    "DetectorInfo",
    "DetectorOutcome",
    "DetectorRun",
    "Finding",
    "FindingsReport",
    "FrozenTradingView",
    "config_schema",
]


@dataclass(frozen=True, slots=True)
class Finding:
    """One scored detection: a suspicious structure and its evidence.

    ``members`` is the sorted node set implicated by the finding (the
    ground-truth unit the planted-case accuracy tests match against);
    ``arcs`` the trading arcs cited as evidence; ``score`` a suspicion
    strength in ``[0, 1]``.  ``details`` carries detector-specific
    scalar attributes as a stable key/value tuple so the finding stays
    hashable.
    """

    detector: str
    kind: str
    members: tuple[Node, ...]
    arcs: tuple[tuple[Node, Node], ...] = ()
    score: float = 1.0
    summary: str = ""
    details: tuple[tuple[str, Attr], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise MiningError(
                f"finding score must be in [0, 1], got {self.score!r}"
            )
        object.__setattr__(self, "members", tuple(sorted(self.members, key=str)))

    @property
    def member_set(self) -> frozenset[Node]:
        return frozenset(self.members)

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready view (files, ``/v1/result?detector=`` payloads)."""
        payload: dict[str, object] = {
            "detector": self.detector,
            "kind": self.kind,
            "members": [str(n) for n in self.members],
            "arcs": sorted([str(a), str(b)] for a, b in self.arcs),
            "score": round(self.score, 6),
            "summary": self.summary,
        }
        if self.details:
            payload["details"] = {key: value for key, value in self.details}
        return payload


class FrozenTradingView:
    """An immutable snapshot of the trading network, built once per run.

    Every portfolio detector needs trading adjacency (cycle search, fan
    in/out profiling, intra-syndicate trade counting).  Freezing the
    iterator-based :class:`~repro.graph.digraph.DiGraph` views into
    tuple adjacency once — and sharing the result through the
    :class:`DetectionContext` — keeps an N-detector run at one graph
    scan instead of N.
    """

    __slots__ = ("arcs", "_out", "_in", "companies")

    def __init__(self, tpiin: TPIIN) -> None:
        out: dict[Node, list[Node]] = {}
        incoming: dict[Node, list[Node]] = {}
        arcs: list[tuple[Node, Node]] = []
        for seller, buyer in tpiin.trading_arcs():
            arcs.append((seller, buyer))
            out.setdefault(seller, []).append(buyer)
            incoming.setdefault(buyer, []).append(seller)
        #: Every trading arc, in graph iteration order.
        self.arcs: tuple[tuple[Node, Node], ...] = tuple(arcs)
        self._out: dict[Node, tuple[Node, ...]] = {
            node: tuple(heads) for node, heads in out.items()
        }
        self._in: dict[Node, tuple[Node, ...]] = {
            node: tuple(tails) for node, tails in incoming.items()
        }
        #: Every company node of the TPIIN (traders and non-traders).
        self.companies: tuple[Node, ...] = tuple(tpiin.graph.nodes(VColor.COMPANY))

    def buyers_of(self, seller: Node) -> tuple[Node, ...]:
        return self._out.get(seller, ())

    def sellers_to(self, buyer: Node) -> tuple[Node, ...]:
        return self._in.get(buyer, ())

    def out_degree(self, node: Node) -> int:
        return len(self._out.get(node, ()))

    def in_degree(self, node: Node) -> int:
        return len(self._in.get(node, ()))

    def __len__(self) -> int:
        return len(self.arcs)


@dataclass(slots=True)
class DetectionContext:
    """Shared, read-only state for one portfolio run.

    The context owns the lazily-built :class:`FrozenTradingView` (the
    "one shared freeze" of a ``run_detectors`` call) and resolves
    registry lookups detectors need (declared capital, industry).
    Detectors must treat every part of the context as immutable.
    """

    tpiin: TPIIN
    tracer: TracerLike = NULL_TRACER
    _trading: FrozenTradingView | None = field(default=None, repr=False)

    @property
    def trading(self) -> FrozenTradingView:
        """The frozen trading view (built on first access, then shared)."""
        if self._trading is None:
            with self.tracer.span("freeze_trading") as span:
                view = FrozenTradingView(self.tpiin)
                if self.tracer.enabled:
                    span.set(arcs=len(view), companies=len(view.companies))
            self._trading = view
        return self._trading

    def registered_capital(self, node: Node, default: float) -> float:
        """Declared registered capital of one company node.

        Falls back to ``default`` when the TPIIN carries no registry,
        the node is unknown, or the company never declared capital.
        """
        registry = self.tpiin.registry
        if registry is None:
            return default
        company = registry.companies.get(str(node))
        if company is None or company.registered_capital is None:
            return default
        return company.registered_capital

    def industry_of(self, node: Node) -> str:
        """Registry industry label of one company (``"general"`` fallback)."""
        registry = self.tpiin.registry
        if registry is None:
            return "general"
        company = registry.companies.get(str(node))
        return company.industry if company is not None else "general"


@dataclass(slots=True)
class DetectorOutcome:
    """What one detector's ``run`` returns before the driver wraps it.

    ``attributes`` are scalar tallies attached to the detector's span
    (and surfaced in :meth:`DetectorRun.to_dict`); ``detection`` is the
    raw group-level :class:`~repro.mining.detector.DetectionResult`,
    filled only by the IAT reference detector so legacy consumers (sus
    files, ``/v1/result``) keep their full payload.
    """

    findings: list[Finding] = field(default_factory=list)
    attributes: dict[str, Attr] = field(default_factory=dict)
    detection: DetectionResult | None = None


@runtime_checkable
class Detector(Protocol):
    """The pluggable detector contract (TPIIN in, findings out).

    Implementations are lightweight, stateless-after-construction
    objects: identity lives in the class attributes ``name`` /
    ``version`` / ``summary`` / ``config_type``, per-run tuning in the
    frozen ``config`` dataclass instance, and all work happens in
    ``run`` against the shared :class:`DetectionContext`.
    """

    name: str
    version: str
    summary: str
    config: object

    def run(self, context: DetectionContext) -> DetectorOutcome:
        """Execute the detector over the context's TPIIN."""
        ...


def config_schema(config: object) -> dict[str, dict[str, object]]:
    """Field name -> ``{type, default}`` schema of one config dataclass.

    The ``/v1/detectors`` listing publishes this so API clients can
    discover each detector's knobs without importing the library.
    Non-scalar defaults (e.g. an attached transaction book) are
    rendered by ``repr`` — the schema is documentation, not a codec.
    """
    if not dataclasses.is_dataclass(config):
        raise MiningError(
            f"detector config must be a dataclass, got {type(config).__name__}"
        )
    schema: dict[str, dict[str, object]] = {}
    for spec in dataclasses.fields(config):
        value = getattr(config, spec.name)
        default: object
        if value is None or isinstance(value, (bool, int, float, str)):
            default = value
        elif isinstance(value, (tuple, list)):
            default = [str(item) for item in value]
        else:
            default = repr(value)
        schema[spec.name] = {"type": str(spec.type), "default": default}
    return schema


@dataclass(frozen=True, slots=True)
class DetectorInfo:
    """Registry-facing identity card of one detector."""

    name: str
    version: str
    summary: str
    schema: dict[str, dict[str, object]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "version": self.version,
            "summary": self.summary,
            "config": {key: dict(spec) for key, spec in self.schema.items()},
        }


@dataclass(slots=True)
class DetectorRun:
    """One detector's completed execution inside a portfolio run."""

    name: str
    version: str
    findings: tuple[Finding, ...]
    elapsed_seconds: float
    attributes: dict[str, Attr] = field(default_factory=dict)
    detection: DetectionResult | None = None

    def summary(self) -> str:
        line = (
            f"detector={self.name} v{self.version} "
            f"findings={len(self.findings)} "
            f"elapsed={self.elapsed_seconds * 1e3:.1f}ms"
        )
        if self.attributes:
            extras = " ".join(f"{k}={v}" for k, v in sorted(self.attributes.items()))
            line += f" [{extras}]"
        return line

    def to_dict(self) -> dict[str, object]:
        return {
            "detector": self.name,
            "version": self.version,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "attributes": dict(self.attributes),
            "findings": [finding.to_dict() for finding in self.findings],
        }


@dataclass(slots=True)
class FindingsReport:
    """Merged outcome of one ``run_detectors`` portfolio run.

    ``runs`` is keyed by detector name in execution order; ``trace`` is
    the root span of the run when tracing was requested.
    """

    runs: dict[str, DetectorRun] = field(default_factory=dict)
    trace: SpanRecord | None = None

    @property
    def findings(self) -> tuple[Finding, ...]:
        """Every finding of every run, in execution order."""
        return tuple(f for run in self.runs.values() for f in run.findings)

    def names(self) -> tuple[str, ...]:
        return tuple(self.runs)

    def __getitem__(self, name: str) -> DetectorRun:
        try:
            return self.runs[name]
        except KeyError:
            raise MiningError(
                f"no run for detector {name!r} (ran: {', '.join(self.runs) or 'none'})"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.runs

    def __len__(self) -> int:
        return len(self.runs)

    def summary(self) -> str:
        """One line per detector, in execution order."""
        if not self.runs:
            return "no detectors ran"
        return "\n".join(run.summary() for run in self.runs.values())

    def to_dict(self) -> dict[str, object]:
        return {
            "detectors": list(self.runs),
            "total_findings": sum(len(run.findings) for run in self.runs.values()),
            "runs": {name: run.to_dict() for name, run in self.runs.items()},
        }
