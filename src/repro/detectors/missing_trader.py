"""Missing-trader detector: under-capitalized high-throughput hubs.

In missing-trader (MTIC/carousel) VAT fraud a thinly-capitalized shell
buys from many suppliers, sells on to many buyers, collects the tax and
vanishes (Alexopoulos et al., *A network and machine learning approach
to detect VAT fraud*).  On a TPIIN the signature is structural plus
fiscal:

* **throughput** — trading fan-in and fan-out both high (a conduit,
  not an endpoint);
* **capacity mismatch** — the declared registered capital supports far
  fewer counterparties than the company actually services (input flow
  vastly exceeds the declared-capital-weighted capacity);
* **ITE deviation** (optional) — when a transaction book is attached,
  the hub's realized sales markups fall short of its industry's
  arm's-length standard (:mod:`repro.ite`), the under-invoicing that
  funds the carousel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detectors.base import DetectionContext, DetectorOutcome, Finding
from repro.errors import MiningError
from repro.graph.digraph import Node
from repro.ite.transactions import DEFAULT_PROFILES, TransactionBook

__all__ = ["MissingTraderConfig", "MissingTraderDetector"]


@dataclass(frozen=True, slots=True)
class MissingTraderConfig:
    """Knobs of the missing-trader scan.

    A company is a candidate hub when ``fan_in >= min_fan_in`` and
    ``fan_out >= min_fan_out``.  Its *capacity* is
    ``registered_capital / capital_per_counterparty`` — the number of
    trading partners the declared capital plausibly services — and the
    hub is flagged when ``(fan_in + fan_out) / capacity`` reaches
    ``min_load_ratio``.  Companies without declared capital are
    assessed at ``default_capital``.  With ``transactions`` attached,
    the hub must additionally show a mean sales-markup shortfall of at
    least ``min_markup_shortfall`` against its industry profile.
    """

    min_fan_in: int = 3
    min_fan_out: int = 2
    capital_per_counterparty: float = 200.0
    min_load_ratio: float = 2.0
    default_capital: float = 1000.0
    transactions: TransactionBook | None = None
    min_markup_shortfall: float = 0.05

    def __post_init__(self) -> None:
        if self.min_fan_in < 1 or self.min_fan_out < 1:
            raise MiningError("min_fan_in and min_fan_out must be >= 1")
        if self.capital_per_counterparty <= 0:
            raise MiningError(
                f"capital_per_counterparty must be positive, "
                f"got {self.capital_per_counterparty}"
            )
        if self.min_load_ratio <= 0:
            raise MiningError(
                f"min_load_ratio must be positive, got {self.min_load_ratio}"
            )


class MissingTraderDetector:
    """Fan-in/fan-out hubs whose declared capital cannot carry the flow."""

    name = "missing-trader"
    version = "1.0.0"
    summary = (
        "High fan-in/fan-out trading conduits whose throughput vastly "
        "exceeds their declared-capital capacity (VAT missing-trader "
        "signature), optionally confirmed by ITE markup deviation."
    )
    config_type = MissingTraderConfig

    def __init__(self, config: MissingTraderConfig | None = None) -> None:
        self.config = config if config is not None else MissingTraderConfig()

    def run(self, context: DetectionContext) -> DetectorOutcome:
        config = self.config
        trading = context.trading
        sales_index = (
            config.transactions.by_seller() if config.transactions is not None else None
        )
        findings: list[Finding] = []
        hubs_gated = 0
        for company in trading.companies:
            sellers = trading.sellers_to(company)
            buyers = trading.buyers_of(company)
            if len(sellers) < config.min_fan_in or len(buyers) < config.min_fan_out:
                continue
            hubs_gated += 1
            capital = context.registered_capital(company, config.default_capital)
            capacity = max(capital, 0.0) / config.capital_per_counterparty
            load = len(sellers) + len(buyers)
            ratio = load / capacity if capacity > 0 else float("inf")
            if ratio < config.min_load_ratio:
                continue
            shortfall = self._markup_shortfall(context, company, sales_index)
            if shortfall is not None and shortfall < config.min_markup_shortfall:
                continue
            details: list[tuple[str, float | int]] = [
                ("fan_in", len(sellers)),
                ("fan_out", len(buyers)),
                ("registered_capital", round(capital, 2)),
                ("load_ratio", round(min(ratio, 1e9), 4)),
            ]
            if shortfall is not None:
                details.append(("markup_shortfall", round(shortfall, 4)))
            arcs = tuple(
                [(seller, company) for seller in sellers]
                + [(company, buyer) for buyer in buyers]
            )
            findings.append(
                Finding(
                    detector=self.name,
                    kind="missing-trader-hub",
                    members=(company, *sellers, *buyers),
                    arcs=arcs,
                    score=ratio / (1.0 + ratio) if ratio != float("inf") else 1.0,
                    summary=(
                        f"{company} routes {len(sellers)} suppliers into "
                        f"{len(buyers)} buyers on {capital:.0f} declared "
                        f"capital (load ratio {min(ratio, 1e9):.1f})"
                    ),
                    details=tuple(details),
                )
            )
        findings.sort(key=lambda f: (-f.score, f.members))
        return DetectorOutcome(
            findings=findings,
            attributes={
                "candidate_hubs": hubs_gated,
                "hubs_flagged": len(findings),
                "ite_checked": sales_index is not None,
            },
        )

    @staticmethod
    def _markup_shortfall(
        context: DetectionContext,
        company: Node,
        sales_index: "dict[str, list] | None",
    ) -> float | None:
        """Mean sales-markup shortfall vs the industry standard.

        ``None`` when no transaction book is attached or the hub has no
        recorded sales (the fiscal test then abstains rather than veto).
        """
        if sales_index is None:
            return None
        sales = sales_index.get(str(company), [])
        if not sales:
            return None
        profile = DEFAULT_PROFILES.get(
            context.industry_of(company), DEFAULT_PROFILES["general"]
        )
        total = 0.0
        for tx in sales:
            total += max(0.0, profile.standard_markup - tx.markup)
        return total / len(sales)
