"""Process-wide detector registry with entry-point-style registration.

Detectors register under a stable public name either as a class object
or as a lazy ``"module:attr"`` specification (the entry-point idiom:
the module is imported only when the detector is first created, so
listing the registry never pays for every implementation's imports).
One process-wide registry mirrors :func:`repro.obs.get_registry`;
tests swap it with :func:`set_detector_registry`.

The built-in portfolio (see docs/DETECTORS.md):

=====================  ==============================================
``iat-groups``         the paper's IAT suspicious-group miner
``circular-trading``   non-trivial trading SCCs with flow balance
``missing-trader``     under-capitalized high-throughput hubs
``shared-household``   kinship syndicates running trading clusters
=====================  ==============================================
"""

from __future__ import annotations

import importlib
from collections.abc import Iterable, Sequence

from repro.detectors.base import Detector, DetectorInfo, config_schema
from repro.errors import MiningError

__all__ = [
    "ALL_DETECTORS",
    "DetectorRegistry",
    "get_detector_registry",
    "set_detector_registry",
]

#: The selection token meaning "every registered detector".
ALL_DETECTORS = "all"

#: Built-in detectors, as lazy entry-point specs.
_BUILTIN_SPECS: dict[str, str] = {
    "iat-groups": "repro.detectors.iat:IATGroupDetector",
    "circular-trading": "repro.detectors.circular:CircularTradingDetector",
    "missing-trader": "repro.detectors.missing_trader:MissingTraderDetector",
    "shared-household": "repro.detectors.household:SharedHouseholdDetector",
}


def _load_spec(spec: str) -> type:
    """Resolve one ``"module:attr"`` entry-point string to its class."""
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise MiningError(
            f"detector spec {spec!r} is not of the form 'module:attr'"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise MiningError(f"cannot import detector module {module_name!r}: {exc}") from exc
    try:
        loaded = getattr(module, attr)
    except AttributeError:
        raise MiningError(f"module {module_name!r} has no attribute {attr!r}") from None
    if not isinstance(loaded, type):
        raise MiningError(f"detector spec {spec!r} resolved to a non-class object")
    return loaded


class DetectorRegistry:
    """Name -> detector class table, with lazy entry-point loading."""

    __slots__ = ("_specs", "_classes")

    def __init__(self, *, builtins: bool = True) -> None:
        self._specs: dict[str, str] = dict(_BUILTIN_SPECS) if builtins else {}
        self._classes: dict[str, type] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self, name: str, detector: "type | str", *, replace: bool = False
    ) -> None:
        """Register a detector class (or lazy ``"module:attr"`` spec).

        Names are the stable public identity (CLI flag values, API
        routes); re-registering an existing name requires ``replace``.
        """
        if not name or "/" in name:
            raise MiningError(f"invalid detector name {name!r}")
        if not replace and (name in self._specs or name in self._classes):
            raise MiningError(
                f"detector {name!r} is already registered (pass replace=True)"
            )
        if isinstance(detector, str):
            self._specs[name] = detector
            self._classes.pop(name, None)
        else:
            self._classes[name] = detector
            self._specs.pop(name, None)

    def unregister(self, name: str) -> None:
        if name not in self._specs and name not in self._classes:
            raise MiningError(f"detector {name!r} is not registered")
        self._specs.pop(name, None)
        self._classes.pop(name, None)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """Every registered name, sorted."""
        return tuple(sorted(set(self._specs) | set(self._classes)))

    def __contains__(self, name: str) -> bool:
        return name in self._specs or name in self._classes

    def load(self, name: str) -> type:
        """The detector class behind ``name`` (imports lazily once)."""
        loaded = self._classes.get(name)
        if loaded is not None:
            return loaded
        spec = self._specs.get(name)
        if spec is None:
            known = ", ".join(self.names()) or "none registered"
            raise MiningError(f"unknown detector {name!r} (choices: {known})")
        loaded = _load_spec(spec)
        self._classes[name] = loaded
        return loaded

    def create(self, name: str, config: object | None = None) -> Detector:
        """Instantiate one detector, optionally with an explicit config."""
        cls = self.load(name)
        detector = cls() if config is None else cls(config)
        if detector.name != name:
            raise MiningError(
                f"detector class {cls.__name__} reports name {detector.name!r} "
                f"but is registered as {name!r}"
            )
        return detector

    def info(self, name: str) -> DetectorInfo:
        """Identity + config schema of one detector (default config)."""
        detector = self.create(name)
        return DetectorInfo(
            name=detector.name,
            version=detector.version,
            summary=detector.summary,
            schema=config_schema(detector.config),
        )

    def resolve(self, selection: "str | Iterable[str]") -> tuple[str, ...]:
        """Normalize a selection into registered names, in stable order.

        ``"all"`` (anywhere in the selection) expands to every
        registered detector; unknown names raise :class:`MiningError`.
        Duplicates collapse, first occurrence wins the ordering.
        """
        tokens: Sequence[str] = (
            [selection] if isinstance(selection, str) else list(selection)
        )
        if not tokens:
            raise MiningError("detector selection is empty")
        ordered: list[str] = []
        for token in tokens:
            expansion = self.names() if token == ALL_DETECTORS else (token,)
            for name in expansion:
                if name not in self:
                    known = ", ".join(self.names()) or "none registered"
                    raise MiningError(
                        f"unknown detector {name!r} (choices: {known}, or 'all')"
                    )
                if name not in ordered:
                    ordered.append(name)
        return tuple(ordered)


_REGISTRY = DetectorRegistry()


def get_detector_registry() -> DetectorRegistry:
    """The process-wide detector registry."""
    return _REGISTRY


def set_detector_registry(registry: DetectorRegistry) -> DetectorRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
