"""Detector plugin framework: fraud-scenario detectors over one TPIIN.

The subsystem generalizes the paper's single IAT group miner into a
portfolio: any object satisfying the :class:`Detector` protocol can be
registered (by entry-point-style ``"module:attr"`` spec or class) and
executed by :func:`run_detectors` over one shared frozen graph, merged
into a per-detector-keyed :class:`FindingsReport`.  Four detectors ship
built in: the reference ``iat-groups`` port of :func:`repro.mining.detect`
plus ``circular-trading``, ``missing-trader`` and ``shared-household``.
"""

from repro.detectors.base import (
    DetectionContext,
    Detector,
    DetectorInfo,
    DetectorOutcome,
    DetectorRun,
    Finding,
    FindingsReport,
    FrozenTradingView,
    config_schema,
)
from repro.detectors.circular import CircularTradingConfig, CircularTradingDetector
from repro.detectors.evaluation import AccuracyReport, accuracy
from repro.detectors.household import SharedHouseholdConfig, SharedHouseholdDetector
from repro.detectors.iat import IATConfig, IATGroupDetector
from repro.detectors.missing_trader import MissingTraderConfig, MissingTraderDetector
from repro.detectors.registry import (
    ALL_DETECTORS,
    DetectorRegistry,
    get_detector_registry,
    set_detector_registry,
)
from repro.detectors.runner import run_detectors

__all__ = [
    "ALL_DETECTORS",
    "AccuracyReport",
    "CircularTradingConfig",
    "CircularTradingDetector",
    "DetectionContext",
    "Detector",
    "DetectorInfo",
    "DetectorOutcome",
    "DetectorRegistry",
    "DetectorRun",
    "Finding",
    "FindingsReport",
    "FrozenTradingView",
    "IATConfig",
    "IATGroupDetector",
    "MissingTraderConfig",
    "MissingTraderDetector",
    "SharedHouseholdConfig",
    "SharedHouseholdDetector",
    "accuracy",
    "config_schema",
    "get_detector_registry",
    "run_detectors",
    "set_detector_registry",
]
