"""Shared-household detector: kinship syndicates running trading clusters.

Fusion already contracts kinship/interlocking-linked persons into
syndicate nodes (Section 4.1, node *B* of Fig. 3(b)).  This detector
reads those contractions back out of the entity registry: a household —
a kinship-connected person syndicate — that controls ``min_companies``
or more companies whose members also **trade with each other** is the
paper's classic family-run evasion syndicate, suspicious even before
any single trade is IAT-certified.  Control is influence reachability
from the syndicate node; the internal trading requirement separates
diversified family holdings from self-dealing clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detectors.base import DetectionContext, DetectorOutcome, Finding
from repro.errors import MiningError
from repro.graph.digraph import Node
from repro.graph.traversal import descendants
from repro.model.colors import EColor, VColor

__all__ = ["SharedHouseholdConfig", "SharedHouseholdDetector"]


@dataclass(frozen=True, slots=True)
class SharedHouseholdConfig:
    """Knobs of the shared-household scan.

    ``link_kinds`` selects which interdependence relationships qualify a
    person syndicate as a household (the fused registry records the
    contracting kinds on ``Syndicate.via``); a syndicate is flagged when
    it controls at least ``min_companies`` companies with at least
    ``min_internal_trades`` trading arcs among them.
    """

    min_companies: int = 3
    min_internal_trades: int = 1
    link_kinds: tuple[str, ...] = ("kinship",)

    def __post_init__(self) -> None:
        if self.min_companies < 2:
            raise MiningError(
                f"min_companies must be >= 2, got {self.min_companies}"
            )
        if self.min_internal_trades < 1:
            raise MiningError(
                f"min_internal_trades must be >= 1, got {self.min_internal_trades}"
            )
        if not self.link_kinds:
            raise MiningError("link_kinds must name at least one relationship")


class SharedHouseholdDetector:
    """Kinship-contracted syndicates controlling mutually-trading companies."""

    name = "shared-household"
    version = "1.0.0"
    summary = (
        "Kinship-contracted person syndicates that control k or more "
        "companies trading with each other (family-run evasion clusters)."
    )
    config_type = SharedHouseholdConfig

    def __init__(self, config: SharedHouseholdConfig | None = None) -> None:
        self.config = config if config is not None else SharedHouseholdConfig()

    def run(self, context: DetectionContext) -> DetectorOutcome:
        registry = context.tpiin.registry
        if registry is None:
            # Without entity provenance the contraction kinds are unknown;
            # abstain rather than guess which merged nodes are households.
            return DetectorOutcome(findings=[], attributes={"no_registry": True})
        config = self.config
        graph = context.tpiin.graph
        trading = context.trading
        wanted = set(config.link_kinds)
        findings: list[Finding] = []
        households = 0
        for syndicate_id, syndicate in sorted(registry.syndicates.items()):
            if syndicate.kind != "person" or not (set(syndicate.via) & wanted):
                continue
            if not graph.has_node(syndicate_id):
                continue  # absorbed by a later contraction step
            households += 1
            controlled = sorted(
                node
                for node in descendants(graph, syndicate_id, EColor.INFLUENCE)
                if graph.node_color(node) == VColor.COMPANY
            )
            if len(controlled) < config.min_companies:
                continue
            owned = set(controlled)
            internal: list[tuple[Node, Node]] = [
                (seller, buyer)
                for seller in controlled
                for buyer in trading.buyers_of(seller)
                if buyer in owned
            ]
            if len(internal) < config.min_internal_trades:
                continue
            score = min(1.0, len(internal) / (len(controlled) - 1))
            findings.append(
                Finding(
                    detector=self.name,
                    kind="shared-household-syndicate",
                    members=(syndicate_id, *controlled),
                    arcs=tuple(internal),
                    score=score,
                    summary=(
                        f"household {syndicate_id} "
                        f"({len(syndicate.members)} persons) controls "
                        f"{len(controlled)} companies with {len(internal)} "
                        f"internal trades"
                    ),
                    details=(
                        ("persons", len(syndicate.members)),
                        ("companies", len(controlled)),
                        ("internal_trades", len(internal)),
                        ("link_kinds", tuple(sorted(set(syndicate.via) & wanted))),
                    ),
                )
            )
        findings.sort(key=lambda f: (-f.score, f.members))
        return DetectorOutcome(
            findings=findings,
            attributes={
                "households_examined": households,
                "syndicates_flagged": len(findings),
            },
        )
