"""The paper's IAT group miner, behind the detector protocol.

This is the *reference* detector of the plugin framework: it adapts
:func:`repro.mining.detect` (Algorithm 1, any of the five engines) to
the :class:`~repro.detectors.base.Detector` contract without changing
its behavior — the property suite in
``tests/property/test_detector_equivalence.py`` holds the plugin path
and the legacy call identical across every engine.

Findings are emitted per suspicious trading arc (the unit the paper's
``susTrade`` files report), scored by the number of independent proof
chains (groups) certifying the arc; the raw group-level
:class:`~repro.mining.detector.DetectionResult` rides along on
:attr:`~repro.detectors.base.DetectorOutcome.detection` so legacy
consumers lose nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detectors.base import DetectionContext, DetectorOutcome, Finding
from repro.graph.digraph import Node
from repro.mining.detector import IAT_DETECTOR_NAME, IAT_DETECTOR_VERSION, detect
from repro.mining.options import DetectOptions

__all__ = ["IATConfig", "IATGroupDetector"]


@dataclass(frozen=True, slots=True)
class IATConfig:
    """Tuning of the wrapped :func:`repro.mining.detect` run.

    Mirrors the engine-facing fields of
    :class:`~repro.mining.options.DetectOptions` (tracing is supplied
    by the portfolio runner, and ``detectors`` recursion is forbidden
    by construction).
    """

    engine: str = "faithful"
    max_trails_per_subtpiin: int | None = None
    skip_trivial_subtpiins: bool = True
    processes: int | None = None
    collect_groups: bool = True
    min_pool_work: int | None = None

    @classmethod
    def from_options(cls, options: DetectOptions) -> "IATConfig":
        """Lift the engine-facing fields out of a ``DetectOptions`` bag."""
        return cls(
            engine=options.engine.value,
            max_trails_per_subtpiin=options.max_trails_per_subtpiin,
            skip_trivial_subtpiins=options.skip_trivial_subtpiins,
            processes=options.processes,
            collect_groups=options.collect_groups,
            min_pool_work=options.min_pool_work,
        )

    def to_options(self) -> DetectOptions:
        return DetectOptions(
            engine=self.engine,
            max_trails_per_subtpiin=self.max_trails_per_subtpiin,
            skip_trivial_subtpiins=self.skip_trivial_subtpiins,
            processes=self.processes,
            collect_groups=self.collect_groups,
            min_pool_work=self.min_pool_work,
        )


class IATGroupDetector:
    """Interest-affiliated-transaction group mining (Tian et al., 2017)."""

    name = IAT_DETECTOR_NAME
    version = IAT_DETECTOR_VERSION
    summary = (
        "Suspicious IAT groups: trading arcs whose parties share a "
        "common interested antecedent (the paper's Algorithm 1)."
    )
    config_type = IATConfig

    def __init__(self, config: IATConfig | None = None) -> None:
        self.config = config if config is not None else IATConfig()

    def run(self, context: DetectionContext) -> DetectorOutcome:
        result = detect(
            context.tpiin,
            self.config.to_options(),
            # Nest the engine's spans under the portfolio runner's.
            trace=context.tracer if context.tracer.enabled else None,
        )
        certifying: dict[tuple[Node, Node], int] = {}
        if result.groups:
            for group in result.groups:
                arc = group.trading_arc
                certifying[arc] = certifying.get(arc, 0) + 1
        else:
            # Count-only engines keep the arc set without the groups.
            certifying = dict.fromkeys(result.suspicious_trading_arcs, 1)
        findings = [
            Finding(
                detector=self.name,
                kind="iat-suspicious-arc",
                members=(seller, buyer),
                arcs=((seller, buyer),),
                # More independent proof chains -> closer to 1.0.
                score=1.0 - 1.0 / (1.0 + count),
                summary=(
                    f"trade {seller} -> {buyer} certified by {count} "
                    f"interest-affiliated group{'s' if count != 1 else ''}"
                ),
                details=(("group_count", count),),
            )
            for (seller, buyer), count in sorted(
                certifying.items(), key=lambda item: (str(item[0][0]), str(item[0][1]))
            )
        ]
        return DetectorOutcome(
            findings=findings,
            attributes={
                "engine": result.engine,
                "groups": result.group_count,
                "suspicious_arcs": result.suspicious_arc_count,
            },
            detection=result,
        )
