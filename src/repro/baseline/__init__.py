"""Baselines the paper compares against (or argues against)."""

from repro.baseline.global_traversal import (
    enumerate_trails_from,
    global_traversal_detect,
)
from repro.baseline.pattern_enum import PatternEnumResult, enumerate_polygon_patterns

__all__ = [
    "PatternEnumResult",
    "enumerate_polygon_patterns",
    "enumerate_trails_from",
    "global_traversal_detect",
]
