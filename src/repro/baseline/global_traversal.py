"""The paper's baseline: global trail traversal (Section 5.1).

    "For gaining the baseline results, we implemented a global traversing
    algorithm that finds any component patterns behind a trading arc.
    The idea of this global traversing algorithm is to find all trails
    between any two different nodes and then check whether any two of
    these trails form a suspicious group."

This implementation enumerates, from each start node, every simple
influence trail and every influence trail closed by one trading arc —
over the *whole* TPIIN, with no divide-and-conquer segmentation and no
pattern-tree sharing — then tests all same-start/same-end trail pairs
against Definition 2.  It is deliberately naive: the efficiency
benchmark measures it against the proposed method.

Two start-set modes are provided:

* ``starts="roots"`` — trails anchored at antecedent indegree-zero nodes,
  the same canonical counting the detector uses; group sets then match
  the detector exactly (property-tested).
* ``starts="all"`` — the literal Definition-2 reading where any node may
  be the antecedent; this yields a superset of groups (every sub-trail
  pair counts) but the *suspicious trading arc* set is provably the same,
  and the tests assert that.

Definition-2 reading note (also in DESIGN.md): a pair of trails that end
with the *same* trading arc technically satisfies Definition 2, but the
paper's matching rule (Appendix B) requires the second component pattern
to reach the end node among its influence elements; we follow the
algorithm, so one trail of a pair must be trading-terminated and the
other influence-terminated.
"""

from __future__ import annotations

from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import DiGraph, Node
from repro.mining.detector import DetectionResult
from repro.mining.groups import GroupKind, SuspiciousGroup
from repro.mining.scs_groups import scs_suspicious_groups
from repro.model.colors import EColor

__all__ = ["global_traversal_detect", "enumerate_trails_from"]


def enumerate_trails_from(
    graph: DiGraph, start: Node
) -> list[tuple[tuple[Node, ...], bool]]:
    """All trails from ``start``: each is (node sequence, trading_closed).

    A trail is a simple influence path, optionally closed by one trading
    arc as its final step (the closing node may revisit the path start —
    a circle).  Unlike the pattern tree, *every* prefix is emitted, which
    is what "all trails between any two different nodes" means.
    """
    trails: list[tuple[tuple[Node, ...], bool]] = [((start,), False)]
    path = [start]
    on_path = {start}
    iters = [iter(sorted(graph.successors(start, EColor.INFLUENCE), key=str))]

    def emit_with_trades(current: tuple[Node, ...]) -> None:
        for target in graph.successors(current[-1], EColor.TRADING):
            trails.append((current + (target,), True))

    emit_with_trades((start,))
    while iters:
        try:
            nxt = next(iters[-1])
        except StopIteration:
            iters.pop()
            on_path.discard(path.pop())
            continue
        if nxt in on_path:
            continue
        path.append(nxt)
        on_path.add(nxt)
        current = tuple(path)
        trails.append((current, False))
        emit_with_trades(current)
        iters.append(iter(sorted(graph.successors(nxt, EColor.INFLUENCE), key=str)))
    return trails


def global_traversal_detect(tpiin: TPIIN, *, starts: str = "roots") -> DetectionResult:
    """Mine suspicious groups by exhaustive trail-pair checking.

    See the module docstring for the ``starts`` modes.  Intended for
    correctness cross-checks and the efficiency benchmark; cost grows
    with (trail count)^2 per (start, end) bucket.
    """
    graph = tpiin.graph
    if starts == "roots":
        start_nodes = [
            n for n in graph.nodes() if graph.in_degree(n, EColor.INFLUENCE) == 0
        ]
    elif starts == "all":
        start_nodes = list(graph.nodes())
    else:
        raise MiningError(f"unknown starts mode {starts!r}")

    groups: list[SuspiciousGroup] = []
    seen_keys: set[tuple[tuple[Node, ...], tuple[Node, ...]]] = set()
    seen_circles: set[tuple[Node, ...]] = set()
    for start in start_nodes:
        trails = enumerate_trails_from(graph, start)
        # Bucket trails by their end node.
        influence_by_end: dict[Node, list[tuple[Node, ...]]] = {}
        trading_by_end: dict[Node, list[tuple[Node, ...]]] = {}
        for nodes, trading_closed in trails:
            bucket = trading_by_end if trading_closed else influence_by_end
            bucket.setdefault(nodes[-1], []).append(nodes)
        for end, closers in trading_by_end.items():
            for closer in closers:
                if end in closer[:-1]:
                    # Circle: the trading arc returns into the trail.
                    position = closer.index(end)
                    circle = closer[position:]
                    if circle[0] == circle[-1] and circle not in seen_circles:
                        seen_circles.add(circle)
                        groups.append(
                            SuspiciousGroup(
                                trading_trail=circle,
                                support_trail=(end,),
                                kind=GroupKind.CIRCLE,
                            )
                        )
                    continue
                for support in influence_by_end.get(end, ()):
                    if len(support) == 1 and support[0] == closer[0]:
                        # Trivial support equals the shared start: only
                        # valid in the circle form handled above.
                        continue
                    key = (closer, support)
                    if key in seen_keys:
                        continue
                    seen_keys.add(key)
                    groups.append(
                        SuspiciousGroup(
                            trading_trail=closer,
                            support_trail=support,
                            kind=GroupKind.MATCHED,
                        )
                    )
    groups.extend(scs_suspicious_groups(tpiin))
    total_trading = tpiin.graph.number_of_arcs(EColor.TRADING) + len(
        tpiin.intra_scs_trades
    )
    return DetectionResult(
        groups=groups,
        total_trading_arcs=total_trading,
        cross_component_trades=0,  # the baseline never segments
        subtpiin_count=1,
        engine=f"global-traversal[{starts}]",
        pattern_trail_count=None,
    )
