"""Naive colored-subgraph pattern enumeration (the road not taken).

Section 3.2 observes that suspicious groups materialize as triangle,
quadrilateral, pentagon and hexagon subgraph patterns — two directed
trails with a common antecedent closed by one trading arc — and that
enumerating all color/shape variants explodes combinatorially.  This
module implements that rejected approach honestly so the benchmark can
show the explosion the paper's pattern-tree method avoids:

for each polygon size ``k`` (3..6 by default) and each split of its
``k - 1`` non-antecedent nodes into two influence branches, all ordered
node assignments are enumerated and checked arc by arc.

The group set found (restricted to *simple* groups of bounded size, with
the antecedent required to be a root for comparability) matches the
detector's simple groups of the same size; the interesting output is
``candidates_examined``, which grows polynomially with degree and
exponentially with ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import Node
from repro.mining.groups import GroupKind, SuspiciousGroup
from repro.model.colors import EColor

__all__ = ["PatternEnumResult", "enumerate_polygon_patterns"]


@dataclass
class PatternEnumResult:
    """Outcome and cost accounting of the naive enumeration."""

    groups: list[SuspiciousGroup] = field(default_factory=list)
    candidates_examined: int = 0
    shapes_enumerated: int = 0
    truncated: bool = False

    @property
    def group_count(self) -> int:
        return len(self.groups)


def _branch_shapes(k: int) -> list[tuple[int, int]]:
    """Splits of a k-gon into two branch lengths.

    A polygon pattern with ``k`` nodes consists of the antecedent, a
    trading branch with ``l1 >= 1`` intermediate-to-terminal nodes ending
    at the trading arc's tail, and a support branch with ``l2 >= 1``
    nodes ending at the trading arc's head, with ``l1 + l2 = k - 1``.
    """
    return [(l1, k - 1 - l1) for l1 in range(1, k - 1)]


def enumerate_polygon_patterns(
    tpiin: TPIIN,
    *,
    max_size: int = 6,
    max_candidates: int | None = None,
) -> PatternEnumResult:
    """Enumerate all simple suspicious groups of at most ``max_size`` nodes.

    Walks every branch-shape of every polygon size from 3 to
    ``max_size``, instantiating branches by following influence arcs
    (depth-first over ordered assignments) and closing with a trading
    arc.  ``candidates_examined`` counts every partial assignment tried;
    ``max_candidates`` aborts the enumeration (setting ``truncated``)
    once the budget is spent, since the explosion is the point.
    """
    graph = tpiin.graph
    result = PatternEnumResult()
    seen: set[tuple[tuple[Node, ...], tuple[Node, ...]]] = set()
    antecedents = [
        n for n in graph.nodes() if graph.in_degree(n, EColor.INFLUENCE) == 0
    ]

    def influence_branches(start: Node, length: int) -> list[tuple[Node, ...]]:
        """All influence paths of exactly ``length`` arcs from ``start``."""
        branches: list[tuple[Node, ...]] = []
        stack: list[tuple[Node, ...]] = [(start,)]
        while stack:
            path = stack.pop()
            result.candidates_examined += 1
            if len(path) - 1 == length:
                branches.append(path)
                continue
            for nxt in graph.successors(path[-1], EColor.INFLUENCE):
                if nxt not in path:
                    stack.append(path + (nxt,))
        return branches

    for k in range(3, max_size + 1):
        for l1, l2 in _branch_shapes(k):
            result.shapes_enumerated += 1
            for antecedent in antecedents:
                lead_branches = influence_branches(antecedent, l1)
                support_branches = influence_branches(antecedent, l2)
                if max_candidates is not None and (
                    result.candidates_examined > max_candidates
                ):
                    result.truncated = True
                    return result
                for lead, support in product(lead_branches, support_branches):
                    result.candidates_examined += 1
                    end = support[-1]
                    if end in lead:
                        continue
                    if set(lead[1:]) & set(support[1:-1]):
                        continue  # not a simple polygon
                    if not graph.has_arc(lead[-1], end, EColor.TRADING):
                        continue
                    key = (lead + (end,), support)
                    if key in seen:
                        continue
                    seen.add(key)
                    result.groups.append(
                        SuspiciousGroup(
                            trading_trail=lead + (end,),
                            support_trail=support,
                            kind=GroupKind.MATCHED,
                        )
                    )
    return result
