"""Edge weighting, ownership control and suspicion scoring (future work)."""

from repro.weights.ownership import (
    ShareholdingRegister,
    derive_investment_graph,
    effective_control,
    stake_arc_weights,
)
from repro.weights.scoring import (
    WeightConfig,
    rank_groups,
    rank_trading_arcs,
    score_group,
    score_trading_arc,
)

__all__ = [
    "ShareholdingRegister",
    "WeightConfig",
    "derive_investment_graph",
    "effective_control",
    "rank_groups",
    "rank_trading_arcs",
    "score_group",
    "score_trading_arc",
    "stake_arc_weights",
]
