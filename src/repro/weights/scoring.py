"""Edge-weight computation and group ranking (the paper's future work).

The conclusion lists "the weight computation methods of edges during a
build-in phase of TPIIN in order to help identify the tax evaders" as
future work.  This module implements a principled version:

* every influence hop carries a weight in ``(0, 1]`` — direct
  person-to-company influence is strongest, each additional investment
  hop decays the connection;
* an antecedent that is a *syndicate* (merged kinship / interlocking /
  mutual-investment structure) strengthens the signal: covert collusion
  through relatives or act-together agreements is precisely what the
  case studies flag;
* a group's score is the product of its two trail strengths; a trading
  arc's suspicion aggregates its groups' scores noisy-OR style, so one
  strong proof chain dominates many weak ones.

Scores are in ``(0, 1]`` and are used by the investigation reports to
rank which suspicious trades an auditor should open first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import Node
from repro.mining.detector import DetectionResult
from repro.mining.groups import GroupKind, SuspiciousGroup
from repro.model.colors import VColor

__all__ = [
    "ArcWeights",
    "WeightConfig",
    "score_group",
    "score_trading_arc",
    "rank_groups",
    "rank_trading_arcs",
]


@dataclass(frozen=True, slots=True)
class WeightConfig:
    """Tunable weights; the defaults follow the rationale above."""

    person_influence: float = 1.0  # person/syndicate -> company hop
    investment_hop: float = 0.85  # company -> company hop
    syndicate_antecedent_boost: float = 1.25
    circle_base: float = 0.9  # a circle is one closed proof chain
    scs_base: float = 0.95  # intra-SCS trades are near-certain IATs
    floor: float = 1e-6

    def __post_init__(self) -> None:
        for name in ("person_influence", "investment_hop", "circle_base", "scs_base"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise MiningError(f"{name} must be in (0, 1], got {value}")
        if self.syndicate_antecedent_boost < 1.0:
            raise MiningError("syndicate_antecedent_boost must be >= 1")


def _is_syndicate(node: Node, tpiin: TPIIN) -> bool:
    if tpiin.registry is not None and str(node) in tpiin.registry.syndicates:
        return True
    text = str(node)
    return text.startswith("syn:") or text.startswith("scs:")


ArcWeights = dict[tuple[Node, Node], float]


def _trail_strength(
    trail: tuple[Node, ...],
    tpiin: TPIIN,
    config: WeightConfig,
    arc_weights: ArcWeights | None = None,
) -> float:
    """Product of hop weights along an influence trail.

    When ``arc_weights`` supplies a fraction for a hop (e.g. the direct
    shareholding from :func:`repro.weights.ownership.stake_arc_weights`),
    that fraction replaces the configured default for the hop.
    """
    strength = 1.0
    for tail, head in zip(trail, trail[1:]):
        if arc_weights is not None and (tail, head) in arc_weights:
            strength *= max(0.0, min(1.0, arc_weights[(tail, head)]))
            continue
        tail_color = tpiin.graph.node_color(tail) if tpiin.graph.has_node(tail) else None
        if tail_color == VColor.PERSON:
            strength *= config.person_influence
        else:
            strength *= config.investment_hop
    return strength


def score_group(
    group: SuspiciousGroup,
    tpiin: TPIIN,
    config: WeightConfig | None = None,
    *,
    arc_weights: ArcWeights | None = None,
) -> float:
    """Suspicion score of one group in ``(0, 1]``."""
    config = config or WeightConfig()
    if group.kind is GroupKind.SCS:
        base = config.scs_base
    elif group.kind is GroupKind.CIRCLE:
        # Score the influence portion of the circle (drop the trading arc).
        base = config.circle_base * _trail_strength(
            group.trading_trail[:-1], tpiin, config, arc_weights
        )
    else:
        lead_influence = group.trading_trail[:-1]  # trading arc itself not decayed
        base = _trail_strength(
            lead_influence, tpiin, config, arc_weights
        ) * _trail_strength(group.support_trail, tpiin, config, arc_weights)
    if _is_syndicate(group.antecedent, tpiin):
        base = min(1.0, base * config.syndicate_antecedent_boost)
    return max(config.floor, min(1.0, base))


def score_trading_arc(
    groups: list[SuspiciousGroup],
    tpiin: TPIIN,
    config: WeightConfig | None = None,
    *,
    arc_weights: ArcWeights | None = None,
) -> float:
    """Noisy-OR aggregation of the groups behind one trading arc."""
    config = config or WeightConfig()
    survival = 1.0
    for group in groups:
        survival *= 1.0 - score_group(group, tpiin, config, arc_weights=arc_weights)
    return 1.0 - survival


def rank_groups(
    result: DetectionResult,
    tpiin: TPIIN,
    config: WeightConfig | None = None,
    *,
    arc_weights: ArcWeights | None = None,
) -> list[tuple[float, SuspiciousGroup]]:
    """Groups sorted by descending suspicion score (ties: stable order)."""
    config = config or WeightConfig()
    scored = [
        (score_group(g, tpiin, config, arc_weights=arc_weights), g)
        for g in result.groups
    ]
    scored.sort(key=lambda item: -item[0])
    return scored


def rank_trading_arcs(
    result: DetectionResult,
    tpiin: TPIIN,
    config: WeightConfig | None = None,
    *,
    arc_weights: ArcWeights | None = None,
) -> list[tuple[float, tuple[Node, Node]]]:
    """Suspicious trading arcs sorted by descending aggregated score."""
    config = config or WeightConfig()
    by_arc: dict[tuple[Node, Node], list[SuspiciousGroup]] = {}
    for group in result.groups:
        by_arc.setdefault(group.trading_arc, []).append(group)
    scored = [
        (score_trading_arc(groups, tpiin, config, arc_weights=arc_weights), arc)
        for arc, groups in by_arc.items()
    ]
    scored.sort(key=lambda item: (-item[0], str(item[1])))
    return scored
