"""Shareholding register and effective-control computation.

The paper's investment graph *GI* records a bare "has a major
shareholding in" relation, and its future work calls for edge weights
computed during the TPIIN build phase.  This module supplies both from
first principles:

* a :class:`ShareholdingRegister` holds fractional stakes of persons
  and companies in companies (per-company totals may not exceed 1);
* :func:`effective_control` solves the classic integrated-ownership
  system ``X = D + X @ S`` — the control an owner exerts through every
  chain of intermediaries — via a dense linear solve (``X = D (I-S)^-1``),
  valid whenever no company is 100%-owned by a cycle;
* :func:`derive_investment_graph` thresholds direct stakes into the
  paper's *GI*, making "major shareholding" an explicit, tunable
  definition instead of an input assumption;
* :func:`stake_arc_weights` exports per-arc weights the suspicion
  scoring of :mod:`repro.weights.scoring` consumes, so a 95%-owned
  proof chain outranks a 31%-owned one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.graph.digraph import Node
from repro.model.homogeneous import InvestmentGraph

__all__ = [
    "ShareholdingRegister",
    "effective_control",
    "derive_investment_graph",
    "stake_arc_weights",
]

#: Stakes per company may exceed 1 by at most this much (rounding slack).
_TOTAL_TOLERANCE = 1e-9


@dataclass
class ShareholdingRegister:
    """Fractional ownership records.

    ``stakes[(owner, company)] = fraction`` with ``0 < fraction <= 1``.
    Owners may be persons or companies; targets are companies.  Re-adding
    a pair accumulates (two share purchases), never exceeding 100%.
    """

    stakes: dict[tuple[Node, Node], float] = field(default_factory=dict)
    _company_total: dict[Node, float] = field(default_factory=dict)

    def add_stake(self, owner: Node, company: Node, fraction: float) -> None:
        if owner == company:
            raise ValidationError(f"{owner!r} cannot hold shares of itself")
        if not 0.0 < fraction <= 1.0:
            raise ValidationError(
                f"stake of {owner!r} in {company!r} must be in (0, 1]; "
                f"got {fraction}"
            )
        total = self._company_total.get(company, 0.0) + fraction
        if total > 1.0 + _TOTAL_TOLERANCE:
            raise ValidationError(
                f"stakes in {company!r} would total {total:.4f} (> 100%)"
            )
        self._company_total[company] = total
        key = (owner, company)
        self.stakes[key] = self.stakes.get(key, 0.0) + fraction

    def stake(self, owner: Node, company: Node) -> float:
        return self.stakes.get((owner, company), 0.0)

    def owners_of(self, company: Node) -> dict[Node, float]:
        return {
            owner: fraction
            for (owner, target), fraction in self.stakes.items()
            if target == company
        }

    def entities(self) -> tuple[list[Node], list[Node]]:
        """(pure owners, companies): an id is a company iff it is owned."""
        companies = set(self._company_total)
        owners = {owner for owner, _target in self.stakes} - companies
        return sorted(owners, key=str), sorted(companies, key=str)

    def __len__(self) -> int:
        return len(self.stakes)


def effective_control(
    register: ShareholdingRegister,
    *,
    max_condition: float = 1e12,
) -> dict[tuple[Node, Node], float]:
    """Integrated ownership through all chains: ``X = D (I - S)^-1``.

    ``S`` is the company-to-company direct stake matrix and ``D`` the
    pure-owner-to-company one.  The result maps ``(owner, company)`` to
    the owner's effective economic control, for every pure owner *and*
    every company as an intermediate owner.  Raises
    :class:`ValidationError` when a fully-owned ownership cycle makes
    the system singular (control is then undefined).
    """
    owners, companies = register.entities()
    if not companies:
        return {}
    company_index = {c: i for i, c in enumerate(companies)}
    n = len(companies)

    S = np.zeros((n, n))
    D = np.zeros((len(owners), n))
    owner_index = {o: i for i, o in enumerate(owners)}
    for (owner, target), fraction in register.stakes.items():
        j = company_index[target]
        if owner in company_index:
            S[company_index[owner], j] = fraction
        else:
            D[owner_index[owner], j] = fraction

    system = np.eye(n) - S
    if np.linalg.cond(system) > max_condition:
        raise ValidationError(
            "ownership cycles approach 100% mutual ownership; effective "
            "control is singular"
        )
    closure = np.linalg.solve(system.T, np.eye(n)).T  # (I - S)^-1

    result: dict[tuple[Node, Node], float] = {}
    X = D @ closure
    for owner, i in owner_index.items():
        for company, j in company_index.items():
            value = float(X[i, j])
            if value > 1e-12:
                result[(owner, company)] = min(value, 1.0)
    # Companies as owners: S @ closure gives control through chains of
    # at least one hop (exclude the trivial self-control of closure's
    # diagonal).
    chain = S @ closure
    for company_a, i in company_index.items():
        for company_b, j in company_index.items():
            if company_a == company_b:
                continue
            value = float(chain[i, j])
            if value > 1e-12:
                result[(company_a, company_b)] = min(value, 1.0)
    return result


def derive_investment_graph(
    register: ShareholdingRegister,
    *,
    threshold: float = 0.5,
    include_all_companies: bool = True,
) -> InvestmentGraph:
    """The paper's *GI*: direct company stakes at/above ``threshold``.

    The 50% default matches "has a major shareholding in" (Section 4.1);
    Case 3's 51%-control investors motivate thresholds at or below 0.51.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValidationError(f"threshold must be in (0, 1]; got {threshold}")
    gi = InvestmentGraph()
    _owners, companies = register.entities()
    if include_all_companies:
        for company in companies:
            gi.add_company(company)
    company_set = set(companies)
    for (owner, target), fraction in register.stakes.items():
        if owner in company_set and fraction >= threshold:
            gi.add_investment(owner, target)
    return gi


def stake_arc_weights(
    register: ShareholdingRegister,
) -> dict[tuple[Node, Node], float]:
    """Per-arc weights for suspicion scoring: the direct stake fraction."""
    return dict(register.stakes)
