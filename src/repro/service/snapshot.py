"""Point-in-time snapshots of the daemon's streamed arc state.

A snapshot pins the full set of live trading arcs at a WAL sequence
number.  Recovery is then ``snapshot + WAL records with seq >
snapshot.last_seq`` — the WAL is truncated right after a snapshot is
written, so under normal operation the log only holds the updates since
the last compaction.

Snapshots are written atomically (temp file + ``os.replace``) so a
crash mid-write leaves the previous snapshot intact, and carry a format
version so the layout can evolve.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import SerializationError

__all__ = ["Snapshot", "read_snapshot", "write_snapshot"]

_SNAPSHOT_FORMAT = 1


@dataclass(frozen=True, slots=True)
class Snapshot:
    """The live arc set as of WAL sequence ``last_seq``."""

    last_seq: int
    arcs: tuple[tuple[str, str], ...]

    @property
    def arc_count(self) -> int:
        return len(self.arcs)


def write_snapshot(path: str | Path, snapshot: Snapshot) -> Path:
    """Atomically persist ``snapshot`` at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": _SNAPSHOT_FORMAT,
        "last_seq": snapshot.last_seq,
        "arcs": [[seller, buyer] for seller, buyer in snapshot.arcs],
    }
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_snapshot(path: str | Path) -> Snapshot | None:
    """Load the snapshot at ``path``; ``None`` when none was written."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SerializationError(f"{path} is not a valid snapshot: {exc}") from exc
    if not isinstance(payload, dict):
        raise SerializationError(f"{path}: expected a JSON object")
    if payload.get("format") != _SNAPSHOT_FORMAT:
        raise SerializationError(
            f"{path}: unsupported snapshot format {payload.get('format')!r}"
        )
    last_seq = payload.get("last_seq")
    arcs_raw = payload.get("arcs")
    if not isinstance(last_seq, int) or isinstance(last_seq, bool) or last_seq < 0:
        raise SerializationError(f"{path}: last_seq {last_seq!r} is invalid")
    if not isinstance(arcs_raw, list):
        raise SerializationError(f"{path}: arcs must be a JSON array")
    arcs: list[tuple[str, str]] = []
    for entry in arcs_raw:
        if (
            not isinstance(entry, list)
            or len(entry) != 2
            or not all(isinstance(endpoint, str) for endpoint in entry)
        ):
            raise SerializationError(f"{path}: malformed arc entry {entry!r}")
        arcs.append((entry[0], entry[1]))
    return Snapshot(last_seq=last_seq, arcs=tuple(arcs))
