"""Operational metrics for the detection daemon.

Request counters, error counters and fixed-bucket latency histograms
per endpoint, plus daemon-level gauges (arcs processed, snapshots
written).  Everything is guarded by one lock — these are tiny critical
sections on a threaded server — and exported as one JSON document on
``GET /metrics`` together with the detector's path-cache counters.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

__all__ = ["LATENCY_BUCKETS_MS", "LatencyHistogram", "ServiceMetrics"]

#: Upper bucket bounds in milliseconds (the last bucket is +inf).
LATENCY_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)


class LatencyHistogram:
    """Cumulative-style fixed-bucket latency histogram."""

    def __init__(self, bounds_ms: tuple[float, ...] = LATENCY_BUCKETS_MS) -> None:
        self._bounds = bounds_ms
        self._counts = [0] * (len(bounds_ms) + 1)
        self._total_ms = 0.0
        self._observations = 0

    def observe(self, elapsed_ms: float) -> None:
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if elapsed_ms <= bound:
                index = i
                break
        self._counts[index] += 1
        self._total_ms += elapsed_ms
        self._observations += 1

    def to_dict(self) -> dict[str, object]:
        buckets = {f"le_{bound:g}ms": count for bound, count in zip(self._bounds, self._counts)}
        buckets["le_inf"] = self._counts[-1]
        mean = self._total_ms / self._observations if self._observations else 0.0
        return {
            "count": self._observations,
            "total_ms": self._total_ms,
            "mean_ms": mean,
            "buckets": buckets,
        }


class ServiceMetrics:
    """Thread-safe metric registry for one daemon instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests: Counter[str] = Counter()
        self._errors: Counter[str] = Counter()
        self._latency: dict[str, LatencyHistogram] = {}
        self._arcs_added = 0
        self._arcs_removed = 0
        self._snapshots_written = 0

    # ------------------------------------------------------------------
    def observe_request(self, endpoint: str, status: int, elapsed_ms: float) -> None:
        with self._lock:
            self._requests[endpoint] += 1
            if status >= 400:
                self._errors[endpoint] += 1
            histogram = self._latency.get(endpoint)
            if histogram is None:
                histogram = self._latency[endpoint] = LatencyHistogram()
            histogram.observe(elapsed_ms)

    def count_arc_applied(self, op: str) -> None:
        with self._lock:
            if op == "add":
                self._arcs_added += 1
            else:
                self._arcs_removed += 1

    def count_snapshot(self) -> None:
        with self._lock:
            self._snapshots_written += 1

    # ------------------------------------------------------------------
    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started

    def to_dict(self) -> dict[str, object]:
        with self._lock:
            return {
                "uptime_seconds": self.uptime_seconds,
                "requests": dict(sorted(self._requests.items())),
                "errors": dict(sorted(self._errors.items())),
                "latency_ms": {
                    endpoint: histogram.to_dict()
                    for endpoint, histogram in sorted(self._latency.items())
                },
                "arcs_added": self._arcs_added,
                "arcs_removed": self._arcs_removed,
                "snapshots_written": self._snapshots_written,
            }
