"""Operational metrics for the detection daemon.

Implemented over :class:`repro.obs.registry.MetricsRegistry` so the
daemon and the batch pipeline report through one schema.  Every
observation is written twice:

* into a **private** per-instance registry — a daemon restarted inside
  one process (tests, embedding) must report its own counts, and the
  legacy ``/metrics`` JSON keys (``requests``, ``latency_ms``,
  ``arcs_added``, ...) read from here;
* into the **shared** process-wide registry
  (:func:`repro.obs.registry.get_registry`) — the source for the
  Prometheus text exposition and the ``registry`` section of the JSON
  payload, merged with whatever the batch ``detect()`` path and the
  streaming detector's path-cache counters recorded.
"""

from __future__ import annotations

import time

from repro.obs.registry import Histogram, MetricsRegistry, get_registry

__all__ = ["ServiceMetrics"]

#: Upper bucket bounds in milliseconds (the last bucket is +inf).
_LATENCY_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)


class ServiceMetrics:
    """Thread-safe metric recorder for one daemon instance."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._shared = registry if registry is not None else get_registry()
        self._own = MetricsRegistry()
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    def observe_request(self, endpoint: str, status: int, elapsed_ms: float) -> None:
        status_class = f"{status // 100}xx"
        for registry in (self._own, self._shared):
            registry.counter(
                "repro_http_requests_total",
                help="HTTP requests served, by endpoint.",
                endpoint=endpoint,
            ).inc()
            if status >= 400:
                registry.counter(
                    "repro_http_errors_total",
                    help="HTTP responses with status >= 400, by endpoint.",
                    endpoint=endpoint,
                ).inc()
            # Two latency series: the endpoint-only histogram feeds the
            # legacy ``latency_ms`` JSON keys; the (endpoint, status
            # class) one is the per-route SLO series Prometheus scrapes.
            registry.histogram(
                "repro_http_request_duration_ms",
                buckets=_LATENCY_BUCKETS_MS,
                help="HTTP request wall time in milliseconds.",
                endpoint=endpoint,
            ).observe(elapsed_ms)
            registry.histogram(
                "repro_http_request_duration_by_status_ms",
                buckets=_LATENCY_BUCKETS_MS,
                help="HTTP request wall time in milliseconds, by endpoint "
                "and status class.",
                endpoint=endpoint,
                status_class=status_class,
            ).observe(elapsed_ms)

    def observe_batch(self, accepted: int, rejected: int, elapsed_ms: float) -> None:
        """One ``POST /v1/arcs:batch`` ingest: per-line tallies + wall time."""
        for registry in (self._own, self._shared):
            registry.counter(
                "repro_batch_requests_total",
                help="NDJSON batch-ingest requests served.",
            ).inc()
            registry.counter(
                "repro_batch_lines_total",
                help="NDJSON batch lines processed, by outcome.",
                outcome="accepted",
            ).inc(accepted)
            registry.counter(
                "repro_batch_lines_total",
                help="NDJSON batch lines processed, by outcome.",
                outcome="rejected",
            ).inc(rejected)
            registry.histogram(
                "repro_batch_duration_ms",
                buckets=_LATENCY_BUCKETS_MS,
                help="Batch-ingest wall time in milliseconds.",
            ).observe(elapsed_ms)

    def set_queue_depth(self, shard: int, depth: int, capacity: int) -> None:
        """Current occupancy of one shard's bounded ingest queue."""
        for registry in (self._own, self._shared):
            registry.gauge(
                "repro_ingest_queue_depth",
                help="Pending mutations in the shard's ingest queue.",
                shard=str(shard),
            ).set(depth)
            registry.gauge(
                "repro_ingest_queue_capacity",
                help="Bound of the shard's ingest queue.",
                shard=str(shard),
            ).set(capacity)

    def count_shed(self, shard: int) -> None:
        """One request shed (429) because the shard's queue was full."""
        for registry in (self._own, self._shared):
            registry.counter(
                "repro_ingest_shed_total",
                help="Mutations rejected with 429 by admission control.",
                shard=str(shard),
            ).inc()

    def count_migration(self, arcs: int) -> None:
        """One cross-shard component merge rehomed ``arcs`` trading arcs."""
        for registry in (self._own, self._shared):
            registry.counter(
                "repro_component_migrations_total",
                help="Cross-shard component merges performed.",
            ).inc()
            registry.counter(
                "repro_migrated_arcs_total",
                help="Trading arcs rehomed by cross-shard merges.",
            ).inc(arcs)

    def count_arc_applied(self, op: str) -> None:
        for registry in (self._own, self._shared):
            registry.counter(
                "repro_arcs_applied_total",
                help="Acknowledged trading-arc mutations, by operation.",
                op=op,
            ).inc()

    def count_snapshot(self) -> None:
        for registry in (self._own, self._shared):
            registry.counter(
                "repro_snapshots_written_total",
                help="Snapshots written by compaction.",
            ).inc()

    def count_wal_append(self) -> None:
        for registry in (self._own, self._shared):
            registry.counter(
                "repro_wal_appends_total",
                help="Records appended to the write-ahead log.",
            ).inc()

    def count_wal_replay(self, records: int, *, torn_tail: bool) -> None:
        for registry in (self._own, self._shared):
            registry.counter(
                "repro_wal_replayed_records_total",
                help="WAL records replayed during recovery.",
            ).inc(records)
            if torn_tail:
                registry.counter(
                    "repro_wal_torn_tails_total",
                    help="Torn WAL tails healed during recovery.",
                ).inc()

    # ------------------------------------------------------------------
    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started

    @property
    def shared_registry(self) -> MetricsRegistry:
        """The process-wide registry this instance mirrors into."""
        return self._shared

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the shared registry."""
        self._shared.gauge(
            "repro_service_uptime_seconds",
            help="Seconds since this daemon's metrics started.",
        ).set(self.uptime_seconds)
        return self._shared.render_prometheus()

    def to_dict(self) -> dict[str, object]:
        """The legacy per-instance JSON view plus the registry export."""
        requests: dict[str, float] = {}
        errors: dict[str, float] = {}
        latency: dict[str, object] = {}
        for labels, metric in self._own.series_for("repro_http_requests_total"):
            requests[labels.get("endpoint", "")] = metric.value
        for labels, metric in self._own.series_for("repro_http_errors_total"):
            errors[labels.get("endpoint", "")] = metric.value
        for labels, metric in self._own.series_for("repro_http_request_duration_ms"):
            if isinstance(metric, Histogram):
                payload = metric.to_dict()
                payload["p50_ms"] = metric.quantile(0.5)
                payload["p99_ms"] = metric.quantile(0.99)
                latency[labels.get("endpoint", "")] = payload
        return {
            "uptime_seconds": self.uptime_seconds,
            "requests": dict(sorted(requests.items())),
            "errors": dict(sorted(errors.items())),
            "latency_ms": dict(sorted(latency.items())),
            "arcs_added": self._op_count("add"),
            "arcs_removed": self._op_count("remove"),
            "snapshots_written": self._own.counter(
                "repro_snapshots_written_total"
            ).value,
            "registry": self._shared.to_dict(),
        }

    def _op_count(self, op: str) -> float:
        return self._own.counter("repro_arcs_applied_total", op=op).value
