"""A single-writer / multi-reader lock for the serving daemon.

The streaming detector mutates shared state on arc updates but every
query endpoint only reads it, so the classic readers-writer discipline
applies: any number of concurrent readers, writers exclusive, and
writer preference so a steady query stream cannot starve updates
(arriving writers block new readers from entering).

The stdlib has no RW lock; this one is a small condition-variable
implementation with context-manager views (``with lock.read(): ...``).
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Writer-preferring readers-writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._active_readers -= 1
            # Only a writer can be blocked on readers draining; when none
            # waits, notifying would wake the whole herd for nothing.
            if self._active_readers == 0 and self._writers_waiting:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read(self) -> Iterator[None]:
        """Shared (reader) critical section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Exclusive (writer) critical section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
