"""The component-sharded detection service: router + shards + merges.

:class:`ShardedDetectionService` splits the serving daemon's state into
N :class:`~repro.service.shard.ShardWorker` partitions, each owning a
disjoint set of weakly connected antecedent components — sound because
detection is arc-decomposable (a suspicious group contains exactly one
trading arc, so an arc's groups depend only on that arc and the static
antecedent network, never on arcs elsewhere).  A thin router
consistent-hashes each mutation onto its component cluster's *home*
shard; queries fan out and merge.

Placement is a locality policy, never a correctness invariant:

* the **ownership map** (arc key -> shard index) is authoritative — an
  arc lives on exactly one shard, and every op on an existing arc
  routes to its owner regardless of where hashing would put it today;
* the **home** of a component cluster is a hash of the *minimum*
  original component index in its union-find set, which makes the
  mapping independent of union order and therefore stable across
  recovery replays;
* a trading arc that bridges two clusters homed on different shards
  triggers a **merge**: a coordinator job rehomes the smaller-min
  cluster's arcs onto the merged home (append the adds to the
  destination WAL and sync *first*, then the removes to the source —
  a crash can duplicate an arc, never lose one; recovery's dedupe pass
  keeps a single deterministic copy).

Every WAL record carries a globally allocated sequence number, so
recovery merges the N shard logs into one deterministic replay order.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from collections.abc import Callable, Iterator, Sequence
from typing import TypeVar

from repro.analysis.investigate import CompanyInvestigation, investigate_company
from repro.detectors.registry import get_detector_registry
from repro.detectors.runner import run_detectors
from repro.errors import MiningError, ServiceError
from repro.fusion.tpiin import TPIIN
from repro.io.registry_io import ArcLine
from repro.mining.detector import DetectionResult
from repro.mining.incremental import ArcUpdate, IncrementalDetector
from repro.model.colors import EColor
from repro.obs.tracing import Tracer
from repro.service.config import ServiceConfig
from repro.service.locks import ReadWriteLock
from repro.service.metrics import ServiceMetrics
from repro.service.shard import PendingMutation, ShardWorker
from repro.service.snapshot import Snapshot, read_snapshot
from repro.service.state import ArcStatus
from repro.service.wal import OP_ADD, OP_REMOVE, ReplayResult, WALRecord, WriteAheadLog

__all__ = ["ShardedDetectionService"]

#: Knuth's multiplicative hash constant; spreads small consecutive
#: component indices across shards far better than a plain modulo.
_HOME_MULTIPLIER = 2654435761

_T = TypeVar("_T")


def _home_of(min_component: int, shards: int) -> int:
    """Shard index for the cluster whose minimum component index is given.

    Depends only on the *minimum* original component index of the
    merged set, which is invariant under the order unions happened in —
    so runtime routing and recovery replay agree on every home.
    """
    return (min_component * _HOME_MULTIPLIER) % (2**32) % shards


def _chunks(items: Sequence[_T], size: int) -> Iterator[Sequence[_T]]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


class _UnionFind:
    """Union-by-size over component indices, tracking each set's minimum.

    ``find`` deliberately does *not* path-compress: lookups happen under
    the router's shared (read) lock from many threads, so they must not
    mutate.  Union-by-size keeps trees logarithmic without compression.
    """

    __slots__ = ("_parent", "_size", "_min")

    def __init__(self, count: int) -> None:
        self._parent = list(range(count))
        self._size = [1] * count
        self._min = list(range(count))

    def find(self, index: int) -> int:
        while self._parent[index] != index:
            index = self._parent[index]
        return index

    def min_of(self, index: int) -> int:
        return self._min[self.find(index)]

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; False if already together."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._min[ra] = min(self._min[ra], self._min[rb])
        return True


class _Plan:
    """Routing verdict for one mutation."""

    __slots__ = ("kind", "shard", "src", "dst", "src_root")

    def __init__(
        self,
        kind: str,
        *,
        shard: int = 0,
        src: int = 0,
        dst: int = 0,
        src_root: int = 0,
    ) -> None:
        self.kind = kind  # "enqueue" | "merge"
        self.shard = shard
        self.src = src
        self.dst = dst
        self.src_root = src_root


class ShardedDetectionService:
    """N shard workers behind a consistent-hashing router.

    API-compatible with :class:`~repro.service.state.DetectionService`
    (the HTTP server and CLI accept either), plus :meth:`apply_batch`
    for NDJSON bulk ingest.  Construct via :meth:`open`.
    """

    #: Router state guarded by the routing lock (R014): the ownership
    #: map and the component union-find.  Shard state lives inside the
    #: workers, each under its own lock.
    _lock_guarded = frozenset({"_ownership", "_union", "_closed"})
    _lock_attr = "_route_lock"

    def __init__(
        self,
        tpiin: TPIIN,
        view: TPIIN,
        detectors: list[IncrementalDetector],
        wals: list[WriteAheadLog],
        config: ServiceConfig,
        *,
        union: _UnionFind,
        ownership: dict[tuple[str, str], int],
        next_seq_start: int,
        recovered_records: int = 0,
        recovered_from_snapshot: bool = False,
        healed_torn_tail: bool = False,
        recovery_trace: dict[str, object] | None = None,
        start_workers: bool = True,
    ) -> None:
        self._tpiin = tpiin
        self._view = view
        self._detectors = detectors
        self._config = config
        self._route_lock = ReadWriteLock()
        self._union = union
        self._ownership = ownership
        self._closed = False
        # Global sequence allocator; its own mutex so WAL stamping never
        # contends with routing.
        self._seq_lock = threading.Lock()
        self._seq = next_seq_start
        # Serializes cross-shard merges: with at most one multi-shard
        # locker at a time (acquiring shard locks in index order), no
        # lock-order cycle can form with the single-shard workers.
        self._merge_mutex = threading.Lock()
        self.metrics = ServiceMetrics()
        self.metrics.count_wal_replay(recovered_records, torn_tail=healed_torn_tail)
        self.recovered_records = recovered_records
        self.recovered_from_snapshot = recovered_from_snapshot
        self.healed_torn_tail = healed_torn_tail
        #: Span tree of the recovery that produced this service.
        self.recovery_trace = recovery_trace
        self._trace_lock = threading.Lock()
        self._recent_traces: deque[tuple[tuple[int, ...], dict[str, object]]] = deque(
            maxlen=max(1, config.recent_traces)
        )
        self._trace_mutations = config.recent_traces > 0
        on_trace = self._record_trace if self._trace_mutations else None
        self._shards = [
            ShardWorker(
                index,
                detectors[index],
                wals[index],
                config,
                self.metrics,
                next_seq=self._allocate_seq,
                owner_of=self._owner_lookup,
                on_applied=self._applied_callback(index),
                forward=self._forward,
                on_trace=on_trace,
                start=start_workers,
            )
            for index in range(config.shards)
        ]
        for index in range(config.shards):
            self.metrics.set_queue_depth(index, 0, config.ingest_queue_limit)

    # ------------------------------------------------------------------
    # construction / recovery
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        tpiin: TPIIN,
        config: ServiceConfig,
        *,
        start_workers: bool = True,
    ) -> "ShardedDetectionService":
        """Load (or initialize) durable state and return a ready service.

        Recovery merges the per-shard WALs by global sequence and
        replays each record onto the shard whose log held it, below a
        per-shard snapshot floor.  On first boot (no snapshot, empty
        WALs) the TPIIN's own trading arcs seed the stream, placed by a
        *baseline-only* union pass so the placement is re-derivable on
        any later restart.  A crash mid-migration can leave an arc on
        two shards; the final dedupe pass keeps the home copy (else the
        lowest shard index) and logs a durable remove against the
        loser's WAL so the duplicate cannot resurface later.
        """
        config.ensure_state_dir()
        n = config.shards
        tracer = Tracer()
        with tracer.span("recovery") as recovery_span:
            view = tpiin.antecedent_view()
            with tracer.span("build_detector") as span:
                # Shard 0 builds the antecedent indexes (bitsets, frozen
                # CSR, component map); the others share them by
                # reference and only stream independently.
                base = IncrementalDetector(
                    view,
                    collect_groups=config.collect_groups,
                    max_cached_roots=config.max_cached_roots,
                    tracer=tracer,
                    ingest_baseline=False,
                )
                detectors = [base]
                for _ in range(1, n):
                    detectors.append(
                        IncrementalDetector(
                            view,
                            collect_groups=config.collect_groups,
                            max_cached_roots=config.max_cached_roots,
                            ingest_baseline=False,
                            share_antecedent_from=base,
                        )
                    )
                span.set(components=base.component_count, shards=n)

            snapshots = [read_snapshot(config.shard_snapshot_path(i)) for i in range(n)]
            wals: list[WriteAheadLog] = []
            replays = []
            for i in range(n):
                wal, replay = WriteAheadLog.open(
                    config.shard_wal_path(i), fsync=config.fsync
                )
                wals.append(wal)
                replays.append(replay)

            union = _UnionFind(base.component_count)
            replayed, seeded = cls._recover_state(
                tpiin, base, detectors, snapshots, replays, union, n, tracer
            )
            ownership, drops = cls._rebuild_ownership(base, detectors, union, n)
            floors = [s.last_seq if s is not None else 0 for s in snapshots]
            next_seq = max([w.last_seq for w in wals] + floors) + 1
            if drops:
                # Make the dedupe durable: without a logged remove, the
                # loser's WAL still says "present", and a later user
                # remove (logged only on the owner) would resurrect the
                # arc on the restart after next.
                touched = set()
                for shard_index, (seller, buyer) in drops:
                    wals[shard_index].append(
                        OP_REMOVE, seller, buyer, seq=next_seq, sync=False
                    )
                    next_seq += 1
                    touched.add(shard_index)
                for shard_index in sorted(touched):
                    wals[shard_index].sync()
            recovery_span.set(
                from_snapshot=any(s is not None for s in snapshots),
                replayed=replayed,
                seeded=seeded,
                shards=n,
            )
            recovery_record = recovery_span.record

        return cls(
            tpiin,
            view,
            detectors,
            wals,
            config,
            union=union,
            ownership=ownership,
            next_seq_start=next_seq,
            recovered_records=replayed,
            recovered_from_snapshot=any(s is not None for s in snapshots),
            healed_torn_tail=any(r.torn_tail for r in replays),
            recovery_trace=(
                recovery_record.to_dict() if recovery_record is not None else None
            ),
            start_workers=start_workers,
        )

    @classmethod
    def _recover_state(
        cls,
        tpiin: TPIIN,
        base: IncrementalDetector,
        detectors: list[IncrementalDetector],
        snapshots: list[Snapshot | None],
        replays: list[ReplayResult],
        union: _UnionFind,
        n: int,
        tracer: Tracer,
    ) -> tuple[int, int]:
        """Seed the shard detectors and replay the merged WALs."""
        seeded = 0
        with tracer.span("seed") as span:
            for i in range(n):
                snapshot = snapshots[i]
                if snapshot is None:
                    continue
                for seller, buyer in snapshot.arcs:
                    cls._recover_apply(
                        detectors[i], OP_ADD, seller, buyer, source="snapshot"
                    )
                    union.union(
                        base.component_of(seller), base.component_of(buyer)
                    )
                    seeded += 1
            if any(s is None for s in snapshots):
                # Shards without a snapshot re-derive their baseline
                # share.  Placement uses a union pass over the baseline
                # arcs alone — never the WAL's merges — so the same
                # arcs land on the same shards on every restart.
                baseline = [
                    (str(s), str(b)) for s, b in tpiin.trading_arcs()
                ] + [(str(s), str(b)) for s, b in tpiin.intra_scs_trades]
                placement = _UnionFind(base.component_count)
                for seller, buyer in baseline:
                    placement.union(
                        base.component_of(seller), base.component_of(buyer)
                    )
                for seller, buyer in baseline:
                    home = _home_of(
                        placement.min_of(base.component_of(seller)), n
                    )
                    if snapshots[home] is not None:
                        # This shard compacted: its snapshot already
                        # accounts for the baseline share it kept.
                        continue
                    cls._recover_apply(
                        detectors[home], OP_ADD, seller, buyer, source="baseline"
                    )
                    union.union(
                        base.component_of(seller), base.component_of(buyer)
                    )
                    seeded += 1
            span.set(arcs=seeded)

        floors = [s.last_seq if s is not None else 0 for s in snapshots]
        merged: list[tuple[WALRecord, int]] = sorted(
            ((record, i) for i in range(n) for record in replays[i].records),
            key=lambda pair: pair[0].seq,
        )
        replayed = 0
        with tracer.span("wal_replay") as span:
            for record, i in merged:
                if record.seq <= floors[i]:
                    # Stale record from a crash between snapshot write
                    # and WAL truncation; the snapshot has it already.
                    continue
                cls._recover_apply(
                    detectors[i], record.op, record.seller, record.buyer, source="WAL"
                )
                if record.op == OP_ADD:
                    union.union(
                        base.component_of(record.seller),
                        base.component_of(record.buyer),
                    )
                replayed += 1
            span.set(replayed=replayed)
        return replayed, seeded

    @staticmethod
    def _rebuild_ownership(
        base: IncrementalDetector,
        detectors: list[IncrementalDetector],
        union: _UnionFind,
        n: int,
    ) -> tuple[dict[tuple[str, str], int], list[tuple[int, tuple[str, str]]]]:
        """Physical placement -> ownership map, deduping crash leftovers.

        A crash between a migration's destination sync and source sync
        leaves an arc on both shards.  The copy at the cluster's home
        wins (else the lowest shard index); the loser is dropped from
        memory here and reported back so the caller can log a durable
        remove against its WAL (else the stale add would resurrect the
        arc on a later restart).
        """
        placements: dict[tuple[str, str], list[int]] = {}
        for i in range(n):
            for seller, buyer in detectors[i].trading_arcs():
                placements.setdefault((str(seller), str(buyer)), []).append(i)
        ownership: dict[tuple[str, str], int] = {}
        drops: list[tuple[int, tuple[str, str]]] = []
        for key, owners in placements.items():
            if len(owners) == 1:
                ownership[key] = owners[0]
                continue
            home = _home_of(union.min_of(base.component_of(key[0])), n)
            keep = home if home in owners else min(owners)
            for i in owners:
                if i != keep:
                    detectors[i].remove_trading_arc(*key)
                    drops.append((i, key))
            ownership[key] = keep
        return ownership, drops

    @staticmethod
    def _recover_apply(
        detector: IncrementalDetector,
        op: str,
        seller: str,
        buyer: str,
        *,
        source: str,
    ) -> None:
        try:
            if op == OP_ADD:
                detector.add_trading_arc(seller, buyer)
            elif op == OP_REMOVE:
                detector.remove_trading_arc(seller, buyer)
            else:  # unreachable for records that passed WAL validation
                raise ServiceError(f"unknown replayed operation {op!r}")
        except MiningError as exc:
            raise ServiceError(
                f"{source} replay of {op} ({seller!r} -> {buyer!r}) failed: {exc}; "
                "is the daemon serving the same TPIIN it was started with?"
            ) from exc

    # ------------------------------------------------------------------
    # routing plumbing (callbacks handed to the shard workers)
    # ------------------------------------------------------------------
    def _allocate_seq(self) -> int:
        with self._seq_lock:
            seq = self._seq
            self._seq += 1
            return seq

    def _owner_lookup(self, key: tuple[str, str]) -> int | None:
        with self._route_lock.read():
            return self._ownership.get(key)

    def _applied_callback(self, shard: int) -> Callable[[str, str, str], None]:
        def on_applied(op: str, seller: str, buyer: str) -> None:
            self._note_applied(op, seller, buyer, shard)

        return on_applied

    def _note_applied(self, op: str, seller: str, buyer: str, shard: int) -> None:
        """Ownership/union bookkeeping, inside the shard's critical section.

        Updating ownership only while the owning shard's lock is held is
        what prevents a stale router thread from overwriting a newer
        placement.  During a migration the destination's add runs before
        the source's remove, so the source may only *clear* an entry it
        still owns.
        """
        key = (seller, buyer)
        if op == OP_ADD:
            try:
                c1 = self._detectors[0].component_of(seller)
                c2 = self._detectors[0].component_of(buyer)
            except MiningError:  # pragma: no cover - applied arcs resolve
                c1 = c2 = -1
            with self._route_lock.write():
                self._ownership[key] = shard
                if c1 >= 0 and c1 != c2:
                    self._union.union(c1, c2)
        else:
            with self._route_lock.write():
                if self._ownership.get(key) == shard:
                    del self._ownership[key]

    def _forward(self, entry: PendingMutation) -> None:
        """Re-enqueue a mutation whose arc a merge rehomed after routing."""
        key = (entry.seller, entry.buyer)
        with self._route_lock.read():
            owner = self._ownership.get(key)
        target = owner if owner is not None else self._home_shard_for(entry.seller)
        self._shards[target].enqueue(entry)

    def _record_trace(
        self, components: tuple[int, ...], payload: dict[str, object]
    ) -> None:
        with self._trace_lock:
            self._recent_traces.append((components, payload))

    def _home_rlocked(self, root: int) -> int:
        return _home_of(self._union.min_of(root), self._config.shards)

    def _home_shard_for(self, node: str) -> int:
        try:
            component = self._detectors[0].component_of(node)
        except MiningError:
            return 0
        with self._route_lock.read():
            return self._home_rlocked(self._union.find(component))

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def add_arc(self, seller: str, buyer: str) -> ArcUpdate:
        """Add a trading arc; returns the verdict with proof-chain groups."""
        return self._dispatch(OP_ADD, str(seller), str(buyer))

    def remove_arc(self, seller: str, buyer: str) -> ArcUpdate:
        """Retract a trading arc (e.g. a corrected filing)."""
        return self._dispatch(OP_REMOVE, str(seller), str(buyer))

    def _dispatch(self, op: str, seller: str, buyer: str) -> ArcUpdate:
        self._ensure_open()
        plan = self._plan(op, (seller, buyer))
        if plan.kind == "enqueue":
            return self._shards[plan.shard].submit(op, seller, buyer).wait()
        # Cross-shard merge: run as a coordinator job on the source
        # shard's queue so it executes at its FIFO position there.
        job = self._shards[plan.src].submit_job(
            lambda: self._run_merge(seller, buyer)
        )
        return job.wait()

    def _plan(self, op: str, key: tuple[str, str]) -> _Plan:
        """Route one mutation: to its owner, its home, or into a merge."""
        seller, buyer = key
        with self._route_lock.read():
            owner = self._ownership.get(key)
        if owner is not None:
            return _Plan("enqueue", shard=owner)
        try:
            c1 = self._detectors[0].component_of(seller)
            c2 = self._detectors[0].component_of(buyer)
        except MiningError:
            # Unknown endpoint: let shard 0's detector produce the
            # error verdict (mirrors the unsharded service's 400).
            return _Plan("enqueue", shard=0)
        with self._route_lock.read():
            r1, r2 = self._union.find(c1), self._union.find(c2)
            h1, h2 = self._home_rlocked(r1), self._home_rlocked(r2)
            if op != OP_ADD or r1 == r2 or h1 == h2:
                return _Plan("enqueue", shard=h1)
            # The new arc bridges clusters homed on different shards:
            # rehome the cluster whose min loses onto the merged home.
            if self._union.min_of(r1) <= self._union.min_of(r2):
                return _Plan("merge", src=h2, dst=h1, src_root=r2)
            return _Plan("merge", src=h1, dst=h2, src_root=r1)

    def _run_merge(self, seller: str, buyer: str) -> ArcUpdate:
        """Coordinate a cross-shard merge (caller holds no locks).

        Serialized by the merge mutex, then re-planned from scratch:
        between routing and execution another merge (or a concurrent
        duplicate add) may have changed the picture, in which case this
        degenerates to a plain locked apply at the current owner/home.
        """
        with self._merge_mutex:
            key = (seller, buyer)
            with self._route_lock.read():
                owner = self._ownership.get(key)
            if owner is not None:
                return self._apply_on(owner, seller, buyer)
            plan = self._plan(OP_ADD, key)
            if plan.kind == "enqueue":
                return self._apply_on(plan.shard, seller, buyer)
            lo, hi = sorted((plan.src, plan.dst))
            with self._shards[lo].lock.write():
                with self._shards[hi].lock.write():
                    return self._merge_under_shard_locks(
                        plan.src, plan.dst, plan.src_root, seller, buyer
                    )

    def _apply_on(self, shard_index: int, seller: str, buyer: str) -> ArcUpdate:
        """Directly apply one add under a single shard's write lock."""
        shard = self._shards[shard_index]
        with shard.lock.write():
            update = shard.add_arc_locked(seller, buyer)
            if update.applied:
                shard.sync_wal_locked()
            shard.maybe_compact_locked()
        return update

    def _merge_under_shard_locks(
        self, src_i: int, dst_i: int, src_root: int, seller: str, buyer: str
    ) -> ArcUpdate:
        """Rehome the source cluster, then apply the triggering arc.

        Caller holds both shards' write locks (acquired in index order)
        and the merge mutex.  Durability order: destination adds sync
        before source removes — a crash in between duplicates arcs
        (recovery dedupes), it never loses an acknowledged one.
        """
        src, dst = self._shards[src_i], self._shards[dst_i]
        with self._route_lock.read():
            moving = [
                arc
                for arc in src.trading_arcs_locked()
                if self._union.find(self._detectors[0].component_of(arc[0]))
                == src_root
            ]
        for s, b in moving:
            dst.add_arc_locked(s, b)
        if moving:
            dst.sync_wal_locked()
        for s, b in moving:
            src.remove_arc_locked(s, b)
        if moving:
            src.sync_wal_locked()
        update = dst.add_arc_locked(seller, buyer)
        if update.applied:
            dst.sync_wal_locked()
        src.maybe_compact_locked()
        dst.maybe_compact_locked()
        if moving:
            self.metrics.count_migration(len(moving))
        return update

    # ------------------------------------------------------------------
    # NDJSON batch ingest
    # ------------------------------------------------------------------
    def apply_batch(self, lines: Sequence[ArcLine]) -> list[dict[str, object]]:
        """Apply parsed NDJSON lines; one report entry per line, in order.

        Lines are routed in a single sequential pass with a batch-local
        overlay (two lines naming the same arc always land on the same
        shard, preserving their relative order), buffered per shard,
        and flushed in parallel — one write-lock hold and one fsync per
        ``group_commit_max`` chunk.  A line that triggers a cross-shard
        merge first flushes every buffer, then merges inline.
        """
        self._ensure_open()
        report: dict[int, dict[str, object]] = {}
        buffers: dict[int, list[ArcLine]] = {i: [] for i in range(len(self._shards))}
        overlay: dict[tuple[str, str], int] = {}
        for line in lines:
            key = (line.seller, line.buyer)
            target = overlay.get(key)
            if target is None:
                plan = self._plan(line.op, key)
                if plan.kind == "merge":
                    self._flush_buffers(buffers, report, overlay)
                    try:
                        update = self._run_merge(line.seller, line.buyer)
                    except (MiningError, ServiceError) as exc:
                        report[line.index] = {"error": str(exc)}
                        continue
                    report[line.index] = _line_report(line.op, update)
                    with self._route_lock.read():
                        resolved = self._ownership.get(key)
                    if resolved is not None:
                        overlay[key] = resolved
                    continue
                target = plan.shard
                overlay[key] = target
            buffers[target].append(line)
        self._flush_buffers(buffers, report, overlay)
        return [
            {"line": index, **report[index]} for index in sorted(report)
        ]

    def _flush_buffers(
        self,
        buffers: dict[int, list[ArcLine]],
        report: dict[int, dict[str, object]],
        overlay: dict[tuple[str, str], int],
    ) -> None:
        live = {i: buf for i, buf in buffers.items() if buf}
        if not live:
            return
        collected: dict[int, list[tuple[int, dict[str, object]]]] = {
            i: [] for i in live
        }

        def flush_one(index: int, lines: list[ArcLine]) -> None:
            out = collected[index]
            for chunk in _chunks(lines, self._config.group_commit_max):
                ops = [(line.op, line.seller, line.buyer) for line in chunk]
                try:
                    outcomes = self._shards[index].apply_chunk(ops)
                except ServiceError as exc:
                    for line in chunk:
                        out.append((line.index, {"error": str(exc)}))
                    continue
                for line, outcome in zip(chunk, outcomes):
                    if outcome is None:
                        # A concurrent merge rehomed the arc between
                        # routing and flush: retry through the router.
                        try:
                            outcome = self._dispatch(
                                line.op, line.seller, line.buyer
                            )
                        except (MiningError, ServiceError) as exc:
                            out.append((line.index, {"error": str(exc)}))
                            continue
                    if isinstance(outcome, BaseException):
                        out.append((line.index, {"error": str(outcome)}))
                    else:
                        out.append((line.index, _line_report(line.op, outcome)))

        if len(live) == 1:
            ((index, lines),) = live.items()
            flush_one(index, lines)
        else:
            threads = [
                threading.Thread(
                    target=flush_one,
                    args=(index, lines),
                    name=f"repro-batch-flush-{index}",
                )
                for index, lines in live.items()
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for out in collected.values():
            for index, entry in out:
                report[index] = entry
        for i in live:
            buffers[i] = []
        overlay.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def arc_status(self, seller: str, buyer: str) -> ArcStatus:
        seller, buyer = str(seller), str(buyer)
        with self._route_lock.read():
            owner = self._ownership.get((seller, buyer))
        target = owner if owner is not None else self._home_shard_for(seller)
        present, suspicious, groups = self._shards[target].arc_view(seller, buyer)
        return ArcStatus(
            seller, buyer, present=present, suspicious=suspicious, groups=groups
        )

    def result(self) -> DetectionResult:
        """Aggregate result, equal to a batch run over the live arc set.

        Reads every shard under a simultaneous read-lock hold (acquired
        in index order, the same order merges use), so the merged
        result is a consistent cut even mid-migration.
        """
        parts = self._consistent_view(lambda shard: shard.result_rlocked())
        return _merge_results(parts, self._detectors[0].component_count)

    def investigate(self, company: str) -> CompanyInvestigation:
        return investigate_company(self._tpiin, self.result(), company)

    def detectors_payload(self) -> dict[str, object]:
        """The ``GET /v1/detectors`` listing (name, version, config schema)."""
        registry = get_detector_registry()
        return {
            "detectors": [registry.info(name).to_dict() for name in registry.names()]
        }

    def detector_findings(self, detector: str) -> dict[str, object]:
        """Run one registered portfolio detector over the live arc set."""
        registry = get_detector_registry()
        if detector not in registry:
            raise MiningError(
                f"unknown detector {detector!r} "
                f"(choices: {', '.join(registry.names())})"
            )
        per_shard = self._consistent_view(
            lambda shard: shard.trading_arcs_rlocked()
        )
        snapshot = self._tpiin.antecedent_view()
        for arcs in per_shard:
            for seller, buyer in arcs:
                mapped_seller = snapshot.node_map.get(seller, seller)
                mapped_buyer = snapshot.node_map.get(buyer, buyer)
                if mapped_seller == mapped_buyer:
                    snapshot.intra_scs_trades.append((seller, buyer))
                else:
                    snapshot.graph.add_arc(mapped_seller, mapped_buyer, EColor.TRADING)
        report = run_detectors(snapshot, [detector], registry=registry)
        return report[detector].to_dict()

    def arc_count(self) -> int:
        return sum(self._consistent_view(lambda shard: shard.arc_count_rlocked()))

    def health(self) -> dict[str, object]:
        with self._route_lock.read():
            closed = self._closed
        seqs = self._consistent_view(lambda shard: shard.wal_last_seq_rlocked())
        arcs = self._consistent_view(lambda shard: shard.arc_count_rlocked())
        return {
            "status": "ok" if not closed else "closed",
            "arcs": sum(arcs),
            "wal_seq": max(seqs) if seqs else 0,
            "shards": len(self._shards),
            "uptime_seconds": self.metrics.uptime_seconds,
            "recovered_records": self.recovered_records,
            "recovered_from_snapshot": self.recovered_from_snapshot,
            "healed_torn_tail": self.healed_torn_tail,
        }

    def metrics_payload(self) -> dict[str, object]:
        payload = self.metrics.to_dict()
        stats = self._consistent_view(
            lambda shard: (
                shard.path_cache_stats_rlocked(),
                shard.arc_count_rlocked(),
                shard.wal_last_seq_rlocked(),
            )
        )
        caches = [s for s, _, _ in stats]
        payload["path_cache"] = {
            "hits": sum(c.hits for c in caches),
            "misses": sum(c.misses for c in caches),
            "evictions": sum(c.evictions for c in caches),
            "size": sum(c.size for c in caches),
            "capacity": self._config.max_cached_roots,
            "hit_rate": (
                sum(c.hits for c in caches)
                / max(1, sum(c.hits + c.misses for c in caches))
            ),
        }
        payload["arcs_tracked"] = sum(count for _, count, _ in stats)
        payload["wal_seq"] = max((seq for _, _, seq in stats), default=0)
        payload["shards"] = [
            {
                "shard": i,
                "arcs": stats[i][1],
                "wal_seq": stats[i][2],
                "queue_depth": self._shards[i].queue_depth(),
            }
            for i in range(len(self._shards))
        ]
        return payload

    def trace_payload(self, subtpiin: int) -> dict[str, object]:
        """Recent mutation span trees touching one subTPIIN, newest last."""
        count = self._detectors[0].component_count
        if not 0 <= subtpiin < count:
            raise MiningError(
                f"subTPIIN index {subtpiin} out of range [0, {count})"
            )
        with self._trace_lock:
            matching = [
                payload
                for components, payload in self._recent_traces
                if subtpiin in components
            ]
        return {
            "subtpiin": subtpiin,
            "tracing_enabled": self._trace_mutations,
            "traces": matching,
        }

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def queue_depths(self) -> list[int]:
        return [shard.queue_depth() for shard in self._shards]

    def _consistent_view(
        self, per_shard: Callable[[ShardWorker], _T]
    ) -> list[_T]:
        """Evaluate ``per_shard`` on every worker under one global cut.

        Read locks are acquired in index order — the same order merge
        jobs acquire write locks — so this can never deadlock against a
        migration, and no arc is double-counted mid-move.
        """
        for shard in self._shards:
            shard.lock.acquire_read()
        try:
            return [per_shard(shard) for shard in self._shards]
        finally:
            for shard in reversed(self._shards):
                shard.lock.release_read()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def compact(self) -> list[Snapshot]:
        """Force a snapshot + WAL truncation on every shard."""
        self._ensure_open()
        return [shard.compact() for shard in self._shards]

    def close(self) -> None:
        """Drain every shard queue, then flush and release the WALs."""
        with self._route_lock.write():
            if self._closed:
                return
            self._closed = True
        for shard in self._shards:
            shard.stop()
        for shard in self._shards:
            shard.close()

    def _ensure_open(self) -> None:
        with self._route_lock.read():
            closed = self._closed
        if closed:
            raise ServiceError("the detection service is closed")

    def __enter__(self) -> "ShardedDetectionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _line_report(op: str, update: ArcUpdate) -> dict[str, object]:
    seller, buyer = update.arc
    return {
        "op": op,
        "arc": [str(seller), str(buyer)],
        "applied": update.applied,
        "suspicious": update.suspicious,
        "group_count": update.group_count,
    }


def _merge_results(
    parts: list[DetectionResult], component_count: int
) -> DetectionResult:
    """Combine per-shard results into one batch-equivalent result.

    Sound because shards partition the arc set: groups concatenate,
    tallies add, and the count overrides merge only when *every* shard
    ran count-only (mixed modes fall back to materialized groups).
    """
    groups: list[object] = []
    for part in parts:
        groups.extend(part.groups)
    count_only = all(part.simple_count_override is not None for part in parts)
    simple = complex_ = None
    kinds = None
    suspicious = None
    if count_only:
        simple = sum(part.simple_count_override or 0 for part in parts)
        complex_ = sum(part.complex_count_override or 0 for part in parts)
        kinds = Counter()
        for part in parts:
            kinds.update(part.kind_counts_override or {})
        suspicious = set()
        for part in parts:
            suspicious |= part.suspicious_arcs_override or set()
    return DetectionResult(
        groups=groups,  # type: ignore[arg-type]
        total_trading_arcs=sum(part.total_trading_arcs for part in parts),
        cross_component_trades=sum(part.cross_component_trades for part in parts),
        subtpiin_count=component_count,
        engine="incremental",
        simple_count_override=simple,
        complex_count_override=complex_,
        kind_counts_override=kinds,
        suspicious_arcs_override=suspicious,
    )
