"""Long-lived detection daemon: durable state, JSON API, Python client.

The paper frames MSG detection as an offline batch over NTICS data;
this package turns the arc-decomposable incremental engine
(:mod:`repro.mining.incremental`) into an online service.  The daemon
loads a TPIIN once, then serves arc updates and detection queries over
a stdlib HTTP/JSON API with write-ahead-logged durability: a restarted
daemon replays snapshot + WAL to its exact pre-crash state.
"""

from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.locks import ReadWriteLock
from repro.service.metrics import ServiceMetrics
from repro.service.server import DetectionHTTPServer, serve
from repro.service.shard import ShardWorker
from repro.service.sharding import ShardedDetectionService
from repro.service.snapshot import Snapshot, read_snapshot, write_snapshot
from repro.service.state import ArcStatus, DetectionService
from repro.service.wal import (
    OP_ADD,
    OP_REMOVE,
    ReplayResult,
    WALRecord,
    WriteAheadLog,
    read_wal,
)

__all__ = [
    "OP_ADD",
    "OP_REMOVE",
    "ArcStatus",
    "DetectionHTTPServer",
    "DetectionService",
    "ReadWriteLock",
    "ReplayResult",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
    "ShardWorker",
    "ShardedDetectionService",
    "Snapshot",
    "WALRecord",
    "WriteAheadLog",
    "read_snapshot",
    "read_wal",
    "serve",
    "write_snapshot",
]
