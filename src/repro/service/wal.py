"""Write-ahead log of trading-arc updates.

Durability contract: an update is acknowledged to the client only after
its record is appended (and, with ``fsync`` on, flushed to stable
storage).  A daemon killed at any instant can therefore replay the log
and land on exactly the set of acknowledged updates.

Format: one JSON object per line (JSONL), each carrying a strictly
increasing ``seq``, the operation (``add`` / ``remove``) and the arc
endpoints.  The format is append-only and human-greppable on purpose —
operators will read this file during incidents.

Crash tolerance follows the classic rule: a *torn tail* (the final line
truncated mid-write by the crash) is tolerated and dropped; corruption
anywhere before the tail means the file cannot be trusted and raises
:class:`~repro.errors.WALError`.  :meth:`WriteAheadLog.open` rewrites a
torn file down to its valid prefix before appending resumes, so a torn
record can never be extended into a plausible-but-wrong one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any

from repro.errors import WALError

__all__ = ["OP_ADD", "OP_REMOVE", "ReplayResult", "WALRecord", "WriteAheadLog", "read_wal"]

OP_ADD = "add"
OP_REMOVE = "remove"
_OPS = frozenset({OP_ADD, OP_REMOVE})


@dataclass(frozen=True, slots=True)
class WALRecord:
    """One acknowledged arc update."""

    seq: int
    op: str
    seller: str
    buyer: str

    def to_json(self) -> str:
        return json.dumps(
            {"seq": self.seq, "op": self.op, "seller": self.seller, "buyer": self.buyer},
            separators=(",", ":"),
        )

    @classmethod
    def from_payload(cls, payload: dict[str, Any], *, context: str) -> "WALRecord":
        try:
            seq = payload["seq"]
            op = payload["op"]
            seller = payload["seller"]
            buyer = payload["buyer"]
        except KeyError as exc:
            raise WALError(f"{context}: record is missing field {exc}") from exc
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
            raise WALError(f"{context}: seq {seq!r} is not a positive integer")
        if op not in _OPS:
            raise WALError(f"{context}: unknown operation {op!r}")
        if not isinstance(seller, str) or not isinstance(buyer, str):
            raise WALError(f"{context}: endpoints must be strings")
        return cls(seq=seq, op=op, seller=seller, buyer=buyer)


@dataclass(frozen=True, slots=True)
class ReplayResult:
    """Outcome of reading a WAL file back."""

    records: tuple[WALRecord, ...]
    torn_tail: bool

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0


def read_wal(path: str | Path) -> ReplayResult:
    """Parse a WAL file, tolerating (and reporting) a torn final line.

    A missing file reads as empty.  Any malformed line other than the
    last, or a non-increasing ``seq``, raises :class:`WALError` — a log
    with a hole in the middle must never be silently replayed.
    """
    path = Path(path)
    if not path.exists():
        return ReplayResult(records=(), torn_tail=False)
    raw = path.read_bytes()
    if not raw:
        return ReplayResult(records=(), torn_tail=False)
    lines = raw.split(b"\n")
    # A well-formed file ends with a newline, leaving one trailing empty
    # chunk; anything else in the final slot is a torn-write candidate.
    tail = lines.pop() if lines else b""
    records: list[WALRecord] = []
    last_seq = 0
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        record = _parse_line(path, lineno, line)
        if record.seq <= last_seq:
            raise WALError(
                f"{path}:{lineno}: seq {record.seq} does not increase "
                f"(previous {last_seq})"
            )
        last_seq = record.seq
        records.append(record)
    torn_tail = False
    if tail.strip():
        try:
            record = _parse_line(path, len(lines) + 1, tail)
        except WALError:
            torn_tail = True  # torn final write: tolerated, dropped
        else:
            if record.seq <= last_seq:
                torn_tail = True
            else:
                # Complete record that merely lost its newline in the
                # crash; it was fully written, so it counts.
                records.append(record)
                torn_tail = True  # file still needs a rewrite
    return ReplayResult(records=tuple(records), torn_tail=torn_tail)


def _parse_line(path: Path, lineno: int, line: bytes) -> WALRecord:
    context = f"{path}:{lineno}"
    try:
        payload = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WALError(f"{context}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise WALError(f"{context}: expected a JSON object")
    return WALRecord.from_payload(payload, context=context)


class WriteAheadLog:
    """Append-only writer over one WAL file."""

    def __init__(self, path: str | Path, *, fsync: bool = True, next_seq: int = 1) -> None:
        self._path = Path(path)
        self._fsync = fsync
        self._next_seq = next_seq
        self._handle: IO[str] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str | Path, *, fsync: bool = True) -> tuple["WriteAheadLog", ReplayResult]:
        """Read the log back, heal a torn tail, and position for appends.

        Returns the writer plus the replay result the caller must apply
        to its in-memory state before serving traffic.
        """
        replay = read_wal(path)
        if replay.torn_tail:
            # Rewrite the valid prefix so the next append starts on a
            # clean newline boundary instead of extending torn bytes.
            healed = Path(path)
            with healed.open("w", encoding="utf-8") as handle:
                for record in replay.records:
                    handle.write(record.to_json() + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        wal = cls(path, fsync=fsync, next_seq=replay.last_seq + 1)
        return wal, replay

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def last_seq(self) -> int:
        return self._next_seq - 1

    def append(
        self,
        op: str,
        seller: str,
        buyer: str,
        *,
        seq: int | None = None,
        sync: bool = True,
    ) -> WALRecord:
        """Durably record one applied update; returns the record.

        ``seq`` overrides the internal counter — shard WALs share one
        global sequence, so their owner assigns it — and must stay
        strictly increasing within this file.  ``sync=False`` buffers
        the record without flushing; the caller then amortizes one
        :meth:`sync` over a whole group of appends (group commit) and
        must not acknowledge any of them before that sync returns.
        """
        if op not in _OPS:
            raise WALError(f"unknown WAL operation {op!r}")
        if seq is not None:
            if seq < self._next_seq:
                raise WALError(
                    f"seq {seq} does not increase (next expected >= {self._next_seq})"
                )
            self._next_seq = seq
        record = WALRecord(seq=self._next_seq, op=op, seller=seller, buyer=buyer)
        handle = self._ensure_handle()
        handle.write(record.to_json() + "\n")
        if sync:
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        self._next_seq += 1
        return record

    def sync(self) -> None:
        """Flush (and fsync, if configured) buffered appends to disk.

        The group-commit barrier: after this returns, every record
        appended with ``sync=False`` is durable and may be acknowledged.
        """
        if self._handle is not None:
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())

    def truncate(self) -> None:
        """Drop every record (after a snapshot made them redundant).

        ``seq`` keeps counting — sequence numbers are unique across the
        daemon's whole history, which lets recovery discard stale
        records if a crash lands between snapshot write and truncation.
        """
        self.close()
        with self._path.open("w", encoding="utf-8") as handle:
            handle.flush()
            os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _ensure_handle(self) -> IO[str]:
        if self._handle is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self._path.open("a", encoding="utf-8")
        return self._handle
