"""Python client for the detection daemon's JSON API.

Pure stdlib (:mod:`urllib.request`); one :class:`ServiceClient` per
daemon base URL.  The client speaks the versioned ``/v1`` API natively
(it never relies on the daemon's 308 compatibility redirects, which
:mod:`urllib` on Python 3.10 does not follow).  Non-2xx responses raise
:class:`~repro.errors.ServiceClientError` carrying the HTTP status and
the daemon's ``error`` message, so callers branch on ``exc.status``
instead of parsing text.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any
from urllib.parse import quote

from repro.errors import ServiceClientError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Thin typed wrapper over the daemon's HTTP endpoints."""

    def __init__(self, base_url: str, *, timeout: float = 10.0) -> None:
        self._base = base_url.rstrip("/")
        self._timeout = timeout

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def add_arc(self, seller: str, buyer: str) -> dict[str, Any]:
        """Add a trading arc; returns the verdict payload."""
        return self._request(
            "POST", "/v1/arcs", body={"op": "add", "seller": seller, "buyer": buyer}
        )

    def remove_arc(self, seller: str, buyer: str) -> dict[str, Any]:
        """Retract a trading arc; returns the verdict payload."""
        return self._request(
            "POST", "/v1/arcs", body={"op": "remove", "seller": seller, "buyer": buyer}
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def arc(self, seller: str, buyer: str) -> dict[str, Any]:
        return self._request(
            "GET", f"/v1/arcs/{quote(seller, safe='')}/{quote(buyer, safe='')}"
        )

    def result(self, *, detector: str | None = None) -> dict[str, Any]:
        """The detection result; a ``detector`` name selects one portfolio
        detector's findings payload instead of the legacy IAT dump."""
        if detector is None:
            return self._request("GET", "/v1/result")
        return self._request(
            "GET", f"/v1/result?detector={quote(detector, safe='')}"
        )

    def detectors(self) -> dict[str, Any]:
        """The registered detector listing (name, version, config schema)."""
        return self._request("GET", "/v1/detectors")

    def investigate(self, company: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/investigate/{quote(company, safe='')}")

    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def trace(self, subtpiin: int) -> dict[str, Any]:
        """Recent mutation span trees touching one subTPIIN index."""
        return self._request("GET", f"/v1/trace/{int(subtpiin)}")

    def wait_until_healthy(self, *, attempts: int = 50, delay: float = 0.1) -> dict[str, Any]:
        """Poll ``/v1/healthz`` until the daemon answers (e.g. right after boot)."""
        last_error: Exception | None = None
        for _ in range(attempts):
            try:
                return self.healthz()
            except ServiceClientError as exc:
                if exc.status:  # daemon answered, just unhappy — do not retry
                    raise
                last_error = exc
            time.sleep(delay)
        raise ServiceClientError(
            f"daemon at {self._base} did not become healthy "
            f"after {attempts} attempts: {last_error}"
        )

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, *, body: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        url = self._base + path
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(url, data=data, method=method)
        if data is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as response:
                payload = self._decode(response.read(), status=response.status, url=url)
        except urllib.error.HTTPError as exc:
            payload = self._decode(exc.read(), status=exc.code, url=url)
            message = payload.get("error", f"HTTP {exc.code}")
            raise ServiceClientError(
                f"{method} {url} failed: {message}", status=exc.code
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceClientError(f"{method} {url} unreachable: {exc.reason}") from exc
        return payload

    @staticmethod
    def _decode(raw: bytes, *, status: int, url: str) -> dict[str, Any]:
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceClientError(
                f"{url} returned invalid JSON (HTTP {status}): {exc}", status=status
            ) from exc
        if not isinstance(payload, dict):
            raise ServiceClientError(
                f"{url} returned a non-object JSON payload (HTTP {status})",
                status=status,
            )
        return payload
