"""Python client for the detection daemon's JSON API.

Pure stdlib (:mod:`http.client`); one :class:`ServiceClient` per daemon
base URL.  The client holds a persistent keep-alive connection — the
daemon's :class:`~http.server.ThreadingHTTPServer` speaks HTTP/1.1, so
reusing one socket avoids a TCP handshake per request, which dominates
latency for small JSON bodies.  If the daemon closed the idle socket
between calls (restart, keep-alive timeout), the client transparently
reopens it and retries the request once.

The client speaks the versioned ``/v1`` API natively (it never relies on
the daemon's 308 compatibility redirects).  Non-2xx responses raise
:class:`~repro.errors.ServiceClientError` carrying the HTTP status and
the daemon's ``error`` message; a 429 additionally carries the parsed
``Retry-After`` header as ``exc.retry_after`` so callers can back off
precisely instead of guessing.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any
from urllib.parse import quote, urlsplit

from repro.errors import ServiceClientError

__all__ = ["ServiceClient"]

# Socket-level failures that mean "the daemon dropped our idle keep-alive
# connection" — safe to reopen and retry exactly once.
_STALE_SOCKET_ERRORS = (
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    ConnectionResetError,
    BrokenPipeError,
)


class ServiceClient:
    """Thin typed wrapper over the daemon's HTTP endpoints.

    Thread-safe: a lock serializes use of the underlying keep-alive
    connection, so one client instance can be shared across threads
    (they will contend for the socket; use one client per thread for
    parallel load).
    """

    def __init__(self, base_url: str, *, timeout: float = 10.0) -> None:
        self._base = base_url.rstrip("/")
        parsed = urlsplit(self._base)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServiceClientError(f"unsupported base URL: {base_url!r}")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._prefix = parsed.path.rstrip("/")
        self._timeout = timeout
        self._lock = threading.Lock()
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def add_arc(self, seller: str, buyer: str) -> dict[str, Any]:
        """Add a trading arc; returns the verdict payload."""
        return self._request(
            "POST", "/v1/arcs", body={"op": "add", "seller": seller, "buyer": buyer}
        )

    def remove_arc(self, seller: str, buyer: str) -> dict[str, Any]:
        """Retract a trading arc; returns the verdict payload."""
        return self._request(
            "POST", "/v1/arcs", body={"op": "remove", "seller": seller, "buyer": buyer}
        )

    def batch_arcs(
        self, ops: list[tuple[str, str, str]] | list[dict[str, str]]
    ) -> dict[str, Any]:
        """Bulk-apply arc mutations in one round trip via NDJSON.

        ``ops`` is a list of ``(op, seller, buyer)`` tuples or
        ``{"op", "seller", "buyer"}`` dicts.  Returns the daemon's batch
        report: accepted/rejected counts plus a per-line verdict list.
        """
        lines: list[str] = []
        for entry in ops:
            if isinstance(entry, dict):
                record = {
                    "op": entry["op"],
                    "seller": entry["seller"],
                    "buyer": entry["buyer"],
                }
            else:
                op, seller, buyer = entry
                record = {"op": op, "seller": seller, "buyer": buyer}
            lines.append(json.dumps(record, separators=(",", ":")))
        payload = "\n".join(lines) + "\n" if lines else ""
        return self._request(
            "POST",
            "/v1/arcs:batch",
            raw_body=payload.encode("utf-8"),
            content_type="application/x-ndjson",
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def arc(self, seller: str, buyer: str) -> dict[str, Any]:
        return self._request(
            "GET", f"/v1/arcs/{quote(seller, safe='')}/{quote(buyer, safe='')}"
        )

    def result(self, *, detector: str | None = None) -> dict[str, Any]:
        """The detection result; a ``detector`` name selects one portfolio
        detector's findings payload instead of the legacy IAT dump."""
        if detector is None:
            return self._request("GET", "/v1/result")
        return self._request(
            "GET", f"/v1/result?detector={quote(detector, safe='')}"
        )

    def detectors(self) -> dict[str, Any]:
        """The registered detector listing (name, version, config schema)."""
        return self._request("GET", "/v1/detectors")

    def investigate(self, company: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/investigate/{quote(company, safe='')}")

    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def trace(self, subtpiin: int) -> dict[str, Any]:
        """Recent mutation span trees touching one subTPIIN index."""
        return self._request("GET", f"/v1/trace/{int(subtpiin)}")

    def wait_until_healthy(self, *, attempts: int = 50, delay: float = 0.1) -> dict[str, Any]:
        """Poll ``/v1/healthz`` until the daemon answers (e.g. right after boot)."""
        last_error: Exception | None = None
        for _ in range(attempts):
            try:
                return self.healthz()
            except ServiceClientError as exc:
                if exc.status:  # daemon answered, just unhappy — do not retry
                    raise
                last_error = exc
            time.sleep(delay)
        raise ServiceClientError(
            f"daemon at {self._base} did not become healthy "
            f"after {attempts} attempts: {last_error}"
        )

    def close(self) -> None:
        """Drop the keep-alive connection (idempotent)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        *,
        body: dict[str, Any] | None = None,
        raw_body: bytes | None = None,
        content_type: str = "application/json",
    ) -> dict[str, Any]:
        url = self._base + path
        data = raw_body
        if data is None and body is not None:
            data = json.dumps(body).encode("utf-8")
        headers = {"Content-Type": content_type} if data is not None else {}
        with self._lock:
            try:
                status, retry_after, raw = self._exchange(method, path, data, headers)
            except _STALE_SOCKET_ERRORS:
                # The daemon dropped our idle socket; reconnect and retry
                # once on a fresh connection.
                self._drop_connection_locked()
                try:
                    status, retry_after, raw = self._exchange(
                        method, path, data, headers
                    )
                except OSError as exc:
                    self._drop_connection_locked()
                    raise ServiceClientError(
                        f"{method} {url} unreachable: {exc}"
                    ) from exc
            except OSError as exc:
                self._drop_connection_locked()
                raise ServiceClientError(f"{method} {url} unreachable: {exc}") from exc
        payload = self._decode(raw, status=status, url=url)
        if status >= 400:
            message = payload.get("error", f"HTTP {status}")
            raise ServiceClientError(
                f"{method} {url} failed: {message}",
                status=status,
                retry_after=retry_after,
            )
        return payload

    def _exchange(
        self, method: str, path: str, data: bytes | None, headers: dict[str, str]
    ) -> tuple[int, float | None, bytes]:
        conn = self._connection_locked()
        conn.request(method, self._prefix + path, body=data, headers=headers)
        response = conn.getresponse()
        raw = response.read()  # fully drain so the socket is reusable
        retry_after: float | None = None
        header = response.getheader("Retry-After")
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                retry_after = None
        if response.will_close:
            self._drop_connection_locked()
        return response.status, retry_after, raw

    def _connection_locked(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._conn

    def _drop_connection_locked(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    @staticmethod
    def _decode(raw: bytes, *, status: int, url: str) -> dict[str, Any]:
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceClientError(
                f"{url} returned invalid JSON (HTTP {status}): {exc}", status=status
            ) from exc
        if not isinstance(payload, dict):
            raise ServiceClientError(
                f"{url} returned a non-object JSON payload (HTTP {status})",
                status=status,
            )
        return payload
