"""The daemon's state machine: detector + WAL + snapshots + locking.

:class:`DetectionService` is the transport-agnostic core of the serving
daemon.  It loads a TPIIN once, wraps an
:class:`~repro.mining.incremental.IncrementalDetector` over the (warm,
immutable) antecedent indexes, and funnels every mutation through a
single-writer/multi-reader lock and a write-ahead log:

1. apply the update to the in-memory detector (validation happens here;
   a rejected update never reaches the log);
2. append the record to the WAL and flush it — only now is the update
   *acknowledged*;
3. every ``snapshot_every`` acknowledged updates, compact: write an
   atomic snapshot of the live arc set and truncate the WAL.

Recovery (:meth:`DetectionService.open`) inverts the pipeline: start
from the trading-free antecedent view, seed it with the snapshot's arcs
(or, on first boot, the TPIIN's own trading arcs), then replay the WAL
tail.  The crash-recovery property suite verifies the result is
byte-identical (up to group ordering) to a batch ``fast_detect`` over
the surviving arc set.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.analysis.investigate import CompanyInvestigation, investigate_company
from repro.detectors.registry import get_detector_registry
from repro.detectors.runner import run_detectors
from repro.errors import MiningError, ServiceError
from repro.fusion.tpiin import TPIIN
from repro.io.registry_io import ArcLine
from repro.mining.detector import DetectionResult
from repro.mining.groups import SuspiciousGroup
from repro.mining.incremental import ArcUpdate, IncrementalDetector
from repro.model.colors import EColor
from repro.obs.tracing import NULL_TRACER, Tracer, TracerLike
from repro.service.config import ServiceConfig
from repro.service.locks import ReadWriteLock
from repro.service.metrics import ServiceMetrics
from repro.service.snapshot import Snapshot, read_snapshot, write_snapshot
from repro.service.wal import OP_ADD, OP_REMOVE, WriteAheadLog

__all__ = ["ArcStatus", "DetectionService"]


class ArcStatus:
    """Read-only view of one trading arc (the ``GET /arcs`` payload)."""

    __slots__ = ("seller", "buyer", "present", "suspicious", "groups")

    def __init__(
        self,
        seller: str,
        buyer: str,
        *,
        present: bool,
        suspicious: bool,
        groups: Sequence[SuspiciousGroup],
    ) -> None:
        self.seller = seller
        self.buyer = buyer
        self.present = present
        self.suspicious = suspicious
        self.groups = tuple(groups)


class DetectionService:
    """Long-lived, durable, concurrency-safe detection state.

    Construct via :meth:`open` (which performs recovery) rather than
    directly; the initializer wires already-recovered parts together.
    """

    #: Attributes that may only be touched under ``self._lock`` —
    #: reads need at least the read lock, mutations the write lock.
    #: Enforced flow-sensitively by reprolint R014.
    _lock_guarded = frozenset(
        {"_detector", "_wal", "_ops_since_snapshot", "_closed", "_recent_traces"}
    )

    def __init__(
        self,
        tpiin: TPIIN,
        detector: IncrementalDetector,
        wal: WriteAheadLog,
        config: ServiceConfig,
        *,
        recovered_records: int = 0,
        recovered_from_snapshot: bool = False,
        healed_torn_tail: bool = False,
        recovery_trace: dict[str, object] | None = None,
    ) -> None:
        self._tpiin = tpiin
        self._detector = detector
        self._wal = wal
        self._config = config
        self._lock = ReadWriteLock()
        self._ops_since_snapshot = 0
        self._closed = False
        self.metrics = ServiceMetrics()
        self.metrics.count_wal_replay(recovered_records, torn_tail=healed_torn_tail)
        self.recovered_records = recovered_records
        self.recovered_from_snapshot = recovered_from_snapshot
        self.healed_torn_tail = healed_torn_tail
        #: Span tree of the recovery that produced this service.
        self.recovery_trace = recovery_trace
        # Recent per-mutation span trees keyed by the subTPIIN (component)
        # indices they touched, newest last, for /v1/trace.
        self._recent_traces: deque[tuple[tuple[int, ...], dict[str, object]]] = deque(
            maxlen=max(1, config.recent_traces)
        )
        self._trace_mutations = config.recent_traces > 0

    # ------------------------------------------------------------------
    # construction / recovery
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, tpiin: TPIIN, config: ServiceConfig) -> "DetectionService":
        """Load (or initialize) durable state and return a ready service.

        On first boot the TPIIN's own trading arcs (including recorded
        intra-SCS trades) seed the stream.  On restart the snapshot and
        WAL fully determine the arc set and the TPIIN only contributes
        its antecedent network — so the same TPIIN file must be served
        across restarts (a mismatch surfaces as :class:`ServiceError`).
        """
        config.ensure_state_dir()
        tracer = Tracer()
        with tracer.span("recovery") as recovery_span:
            snapshot = read_snapshot(config.snapshot_path)
            wal, replay = WriteAheadLog.open(config.wal_path, fsync=config.fsync)

            with tracer.span("build_detector") as span:
                detector = IncrementalDetector(
                    tpiin.antecedent_view(),
                    collect_groups=config.collect_groups,
                    max_cached_roots=config.max_cached_roots,
                    tracer=tracer,
                )
                span.set(components=detector.component_count)

            if snapshot is not None:
                # The snapshot captures the complete live arc set (baseline
                # included), so the TPIIN's own trading arcs are not re-read.
                with tracer.span("seed_snapshot") as span:
                    for seller, buyer in snapshot.arcs:
                        cls._replay_apply(
                            detector, OP_ADD, seller, buyer, source="snapshot"
                        )
                    span.set(arcs=len(snapshot.arcs))
            else:
                # No snapshot yet: the baseline is the TPIIN's trading arcs;
                # the WAL (if any) holds only the deltas applied on top.
                with tracer.span("seed_baseline") as span:
                    seeded = 0
                    for seller, buyer in tpiin.trading_arcs():
                        detector.add_trading_arc(seller, buyer)
                        seeded += 1
                    for seller, buyer in tpiin.intra_scs_trades:
                        detector.add_trading_arc(seller, buyer)
                        seeded += 1
                    span.set(arcs=seeded)

            floor = snapshot.last_seq if snapshot is not None else 0
            replayed = 0
            with tracer.span("wal_replay") as span:
                for record in replay.records:
                    if record.seq <= floor:
                        # Stale record from a crash between snapshot write
                        # and WAL truncation; the snapshot has it already.
                        continue
                    cls._replay_apply(
                        detector, record.op, record.seller, record.buyer, source="WAL"
                    )
                    replayed += 1
                span.set(replayed=replayed, torn_tail=replay.torn_tail)
            recovery_span.set(
                from_snapshot=snapshot is not None, replayed=replayed
            )
            recovery_record = recovery_span.record

        return cls(
            tpiin,
            detector,
            wal,
            config,
            recovered_records=replayed,
            recovered_from_snapshot=snapshot is not None,
            healed_torn_tail=replay.torn_tail,
            recovery_trace=(
                recovery_record.to_dict() if recovery_record is not None else None
            ),
        )

    @staticmethod
    def _replay_apply(
        detector: IncrementalDetector, op: str, seller: str, buyer: str, *, source: str
    ) -> None:
        try:
            if op == OP_ADD:
                detector.add_trading_arc(seller, buyer)
            elif op == OP_REMOVE:
                detector.remove_trading_arc(seller, buyer)
            else:  # unreachable for records that passed WAL validation
                raise ServiceError(f"unknown replayed operation {op!r}")
        except MiningError as exc:
            raise ServiceError(
                f"{source} replay of {op} ({seller!r} -> {buyer!r}) failed: {exc}; "
                "is the daemon serving the same TPIIN it was started with?"
            ) from exc

    # ------------------------------------------------------------------
    # mutations (exclusive)
    # ------------------------------------------------------------------
    def add_arc(self, seller: str, buyer: str) -> ArcUpdate:
        """Add a trading arc; returns the verdict with proof-chain groups."""
        return self._mutate(OP_ADD, seller, buyer)

    def remove_arc(self, seller: str, buyer: str) -> ArcUpdate:
        """Retract a trading arc (e.g. a corrected filing)."""
        return self._mutate(OP_REMOVE, seller, buyer)

    def _mutate(self, op: str, seller: str, buyer: str) -> ArcUpdate:
        with self._lock.write():
            self._ensure_open_locked()
            tracer: TracerLike = Tracer() if self._trace_mutations else NULL_TRACER
            with tracer.span("mutation") as span:
                with tracer.span("apply"):
                    if op == OP_ADD:
                        update = self._detector.add_trading_arc(seller, buyer)
                    else:
                        update = self._detector.remove_trading_arc(seller, buyer)
                if update.applied:
                    # The append must stay inside the critical section: an
                    # update is acknowledged only once durable, and WAL order
                    # must match detector apply order.
                    with tracer.span("wal_append"):
                        self._wal.append(op, str(seller), str(buyer))  # reprolint: disable=R014
                    self.metrics.count_wal_append()
                    self.metrics.count_arc_applied(op)
                    self._ops_since_snapshot += 1
                    if self._ops_since_snapshot >= self._config.snapshot_every:
                        self._compact_locked()
                if tracer.enabled:
                    span.set(
                        op=op,
                        seller=str(seller),
                        buyer=str(buyer),
                        applied=update.applied,
                        suspicious=update.suspicious,
                    )
                record = span.record
            if record is not None:
                components = self._components_of_locked(seller, buyer)
                self._recent_traces.append(
                    (
                        components,
                        {
                            "subtpiins": list(components),
                            "op": op,
                            "arc": [str(seller), str(buyer)],
                            "trace": record.to_dict(),
                        },
                    )
                )
            return update

    def _components_of_locked(self, seller: str, buyer: str) -> tuple[int, ...]:
        components = set()
        for node in (seller, buyer):
            try:
                components.add(self._detector.component_of(node))
            except MiningError:
                continue
        return tuple(sorted(components))

    def apply_batch(self, lines: Sequence[ArcLine]) -> list[dict[str, object]]:
        """Apply parsed NDJSON lines; one report entry per line, in order.

        The single-shard counterpart of the sharded service's bulk
        ingest: lines are applied in chunks of ``group_commit_max``,
        each chunk one write-lock hold with one WAL flush+fsync at the
        end — the same group-commit discipline, so acknowledgement
        still implies durability while the fsync cost amortizes across
        the chunk.
        """
        report: list[dict[str, object]] = []
        chunk_size = max(1, self._config.group_commit_max)
        for start in range(0, len(lines), chunk_size):
            chunk = lines[start : start + chunk_size]
            with self._lock.write():
                self._ensure_open_locked()
                appended = False
                for line in chunk:
                    try:
                        if line.op == OP_ADD:
                            update = self._detector.add_trading_arc(
                                line.seller, line.buyer
                            )
                        else:
                            update = self._detector.remove_trading_arc(
                                line.seller, line.buyer
                            )
                    except MiningError as exc:
                        report.append({"line": line.index, "error": str(exc)})
                        continue
                    if update.applied:
                        self._wal.append(  # reprolint: disable=R014
                            line.op, line.seller, line.buyer, sync=False
                        )
                        appended = True
                        self.metrics.count_wal_append()
                        self.metrics.count_arc_applied(line.op)
                        self._ops_since_snapshot += 1
                    report.append(
                        {
                            "line": line.index,
                            "op": line.op,
                            "arc": [line.seller, line.buyer],
                            "applied": update.applied,
                            "suspicious": update.suspicious,
                            "group_count": update.group_count,
                        }
                    )
                if appended:
                    # Group-commit barrier: one fsync covers the chunk.
                    self._wal.sync()  # reprolint: disable=R014
                    if self._ops_since_snapshot >= self._config.snapshot_every:
                        self._compact_locked()
        return report

    def compact(self) -> Snapshot:
        """Force a snapshot + WAL truncation; returns the snapshot."""
        with self._lock.write():
            self._ensure_open_locked()
            return self._compact_locked()

    def _compact_locked(self) -> Snapshot:
        snapshot = Snapshot(
            last_seq=self._wal.last_seq,
            arcs=tuple(
                (str(seller), str(buyer))
                for seller, buyer in self._detector.trading_arcs()
            ),
        )
        # Snapshot write and WAL truncation must be atomic with respect to
        # mutations: a write between them would be lost on recovery.
        write_snapshot(self._config.snapshot_path, snapshot)  # reprolint: disable=R014
        self._wal.truncate()  # reprolint: disable=R014
        self._ops_since_snapshot = 0
        self.metrics.count_snapshot()
        return snapshot

    # ------------------------------------------------------------------
    # queries (shared)
    # ------------------------------------------------------------------
    def arc_status(self, seller: str, buyer: str) -> ArcStatus:
        with self._lock.read():
            return ArcStatus(
                str(seller),
                str(buyer),
                present=(seller, buyer) in self._detector,
                suspicious=self._detector.is_suspicious_arc(seller, buyer),
                groups=self._detector.groups_for_arc(seller, buyer),
            )

    def result(self) -> DetectionResult:
        """Aggregate result, equal to a batch run over the live arc set."""
        with self._lock.read():
            return self._detector.result()

    def investigate(self, company: str) -> CompanyInvestigation:
        with self._lock.read():
            return investigate_company(self._tpiin, self._detector.result(), company)

    def detectors_payload(self) -> dict[str, object]:
        """The ``GET /v1/detectors`` listing (name, version, config schema)."""
        registry = get_detector_registry()
        return {
            "detectors": [registry.info(name).to_dict() for name in registry.names()]
        }

    def detector_findings(self, detector: str) -> dict[str, object]:
        """Run one registered portfolio detector over the live arc set.

        The live arcs are read under the shared lock, then overlaid onto
        a trading-free antecedent snapshot *outside* the critical
        section, so an expensive detector never stalls mutations.
        """
        registry = get_detector_registry()
        if detector not in registry:
            raise MiningError(
                f"unknown detector {detector!r} "
                f"(choices: {', '.join(registry.names())})"
            )
        with self._lock.read():
            arcs = list(self._detector.trading_arcs())
        snapshot = self._tpiin.antecedent_view()
        for seller, buyer in arcs:
            mapped_seller = snapshot.node_map.get(seller, seller)
            mapped_buyer = snapshot.node_map.get(buyer, buyer)
            if mapped_seller == mapped_buyer:
                snapshot.intra_scs_trades.append((seller, buyer))
            else:
                snapshot.graph.add_arc(mapped_seller, mapped_buyer, EColor.TRADING)
        report = run_detectors(snapshot, [detector], registry=registry)
        return report[detector].to_dict()

    def arc_count(self) -> int:
        with self._lock.read():
            return len(self._detector)

    def health(self) -> dict[str, object]:
        with self._lock.read():
            return {
                "status": "ok" if not self._closed else "closed",
                "arcs": len(self._detector),
                "wal_seq": self._wal.last_seq,
                "uptime_seconds": self.metrics.uptime_seconds,
                "recovered_records": self.recovered_records,
                "recovered_from_snapshot": self.recovered_from_snapshot,
                "healed_torn_tail": self.healed_torn_tail,
            }

    def metrics_payload(self) -> dict[str, object]:
        payload = self.metrics.to_dict()
        with self._lock.read():
            payload["path_cache"] = self._detector.path_cache_stats.to_dict()
            payload["arcs_tracked"] = len(self._detector)
            payload["wal_seq"] = self._wal.last_seq
        return payload

    def trace_payload(self, subtpiin: int) -> dict[str, object]:
        """Recent mutation span trees touching one subTPIIN, newest last.

        ``subtpiin`` is the component index reported by
        ``/result``/``/investigate``; out-of-range indices raise
        :class:`MiningError` (surfaced as HTTP 400 by the server).
        """
        with self._lock.read():
            count = self._detector.component_count
            if not 0 <= subtpiin < count:
                raise MiningError(
                    f"subTPIIN index {subtpiin} out of range [0, {count})"
                )
            matching = [
                payload
                for components, payload in self._recent_traces
                if subtpiin in components
            ]
        return {
            "subtpiin": subtpiin,
            "tracing_enabled": self._trace_mutations,
            "traces": matching,
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and release durable state (idempotent)."""
        with self._lock.write():
            if self._closed:
                return
            self._closed = True
            wal = self._wal
        # The final flush happens outside the critical section: once
        # ``_closed`` is set no mutation can reach the WAL, and holding
        # every reader hostage to an fsync would stall shutdown probes.
        wal.close()

    def _ensure_open_locked(self) -> None:
        if self._closed:
            raise ServiceError("the detection service is closed")

    def __enter__(self) -> "DetectionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
