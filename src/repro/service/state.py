"""The daemon's state machine: detector + WAL + snapshots + locking.

:class:`DetectionService` is the transport-agnostic core of the serving
daemon.  It loads a TPIIN once, wraps an
:class:`~repro.mining.incremental.IncrementalDetector` over the (warm,
immutable) antecedent indexes, and funnels every mutation through a
single-writer/multi-reader lock and a write-ahead log:

1. apply the update to the in-memory detector (validation happens here;
   a rejected update never reaches the log);
2. append the record to the WAL and flush it — only now is the update
   *acknowledged*;
3. every ``snapshot_every`` acknowledged updates, compact: write an
   atomic snapshot of the live arc set and truncate the WAL.

Recovery (:meth:`DetectionService.open`) inverts the pipeline: start
from the trading-free antecedent view, seed it with the snapshot's arcs
(or, on first boot, the TPIIN's own trading arcs), then replay the WAL
tail.  The crash-recovery property suite verifies the result is
byte-identical (up to group ordering) to a batch ``fast_detect`` over
the surviving arc set.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.investigate import CompanyInvestigation, investigate_company
from repro.errors import MiningError, ServiceError
from repro.fusion.tpiin import TPIIN
from repro.mining.detector import DetectionResult
from repro.mining.groups import SuspiciousGroup
from repro.mining.incremental import ArcUpdate, IncrementalDetector
from repro.service.config import ServiceConfig
from repro.service.locks import ReadWriteLock
from repro.service.metrics import ServiceMetrics
from repro.service.snapshot import Snapshot, read_snapshot, write_snapshot
from repro.service.wal import OP_ADD, OP_REMOVE, WriteAheadLog

__all__ = ["ArcStatus", "DetectionService"]


class ArcStatus:
    """Read-only view of one trading arc (the ``GET /arcs`` payload)."""

    __slots__ = ("seller", "buyer", "present", "suspicious", "groups")

    def __init__(
        self,
        seller: str,
        buyer: str,
        *,
        present: bool,
        suspicious: bool,
        groups: Sequence[SuspiciousGroup],
    ) -> None:
        self.seller = seller
        self.buyer = buyer
        self.present = present
        self.suspicious = suspicious
        self.groups = tuple(groups)


class DetectionService:
    """Long-lived, durable, concurrency-safe detection state.

    Construct via :meth:`open` (which performs recovery) rather than
    directly; the initializer wires already-recovered parts together.
    """

    def __init__(
        self,
        tpiin: TPIIN,
        detector: IncrementalDetector,
        wal: WriteAheadLog,
        config: ServiceConfig,
        *,
        recovered_records: int = 0,
        recovered_from_snapshot: bool = False,
        healed_torn_tail: bool = False,
    ) -> None:
        self._tpiin = tpiin
        self._detector = detector
        self._wal = wal
        self._config = config
        self._lock = ReadWriteLock()
        self._ops_since_snapshot = 0
        self._closed = False
        self.metrics = ServiceMetrics()
        self.recovered_records = recovered_records
        self.recovered_from_snapshot = recovered_from_snapshot
        self.healed_torn_tail = healed_torn_tail

    # ------------------------------------------------------------------
    # construction / recovery
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, tpiin: TPIIN, config: ServiceConfig) -> "DetectionService":
        """Load (or initialize) durable state and return a ready service.

        On first boot the TPIIN's own trading arcs (including recorded
        intra-SCS trades) seed the stream.  On restart the snapshot and
        WAL fully determine the arc set and the TPIIN only contributes
        its antecedent network — so the same TPIIN file must be served
        across restarts (a mismatch surfaces as :class:`ServiceError`).
        """
        config.ensure_state_dir()
        snapshot = read_snapshot(config.snapshot_path)
        wal, replay = WriteAheadLog.open(config.wal_path, fsync=config.fsync)

        detector = IncrementalDetector(
            tpiin.antecedent_view(),
            collect_groups=config.collect_groups,
            max_cached_roots=config.max_cached_roots,
        )

        if snapshot is not None:
            # The snapshot captures the complete live arc set (baseline
            # included), so the TPIIN's own trading arcs are not re-read.
            for seller, buyer in snapshot.arcs:
                cls._replay_apply(detector, OP_ADD, seller, buyer, source="snapshot")
        else:
            # No snapshot yet: the baseline is the TPIIN's trading arcs;
            # the WAL (if any) holds only the deltas applied on top.
            for seller, buyer in tpiin.trading_arcs():
                detector.add_trading_arc(seller, buyer)
            for seller, buyer in tpiin.intra_scs_trades:
                detector.add_trading_arc(seller, buyer)

        floor = snapshot.last_seq if snapshot is not None else 0
        replayed = 0
        for record in replay.records:
            if record.seq <= floor:
                # Stale record from a crash between snapshot write and
                # WAL truncation; the snapshot already contains it.
                continue
            cls._replay_apply(
                detector, record.op, record.seller, record.buyer, source="WAL"
            )
            replayed += 1

        return cls(
            tpiin,
            detector,
            wal,
            config,
            recovered_records=replayed,
            recovered_from_snapshot=snapshot is not None,
            healed_torn_tail=replay.torn_tail,
        )

    @staticmethod
    def _replay_apply(
        detector: IncrementalDetector, op: str, seller: str, buyer: str, *, source: str
    ) -> None:
        try:
            if op == OP_ADD:
                detector.add_trading_arc(seller, buyer)
            elif op == OP_REMOVE:
                detector.remove_trading_arc(seller, buyer)
            else:  # unreachable for records that passed WAL validation
                raise ServiceError(f"unknown replayed operation {op!r}")
        except MiningError as exc:
            raise ServiceError(
                f"{source} replay of {op} ({seller!r} -> {buyer!r}) failed: {exc}; "
                "is the daemon serving the same TPIIN it was started with?"
            ) from exc

    # ------------------------------------------------------------------
    # mutations (exclusive)
    # ------------------------------------------------------------------
    def add_arc(self, seller: str, buyer: str) -> ArcUpdate:
        """Add a trading arc; returns the verdict with proof-chain groups."""
        return self._mutate(OP_ADD, seller, buyer)

    def remove_arc(self, seller: str, buyer: str) -> ArcUpdate:
        """Retract a trading arc (e.g. a corrected filing)."""
        return self._mutate(OP_REMOVE, seller, buyer)

    def _mutate(self, op: str, seller: str, buyer: str) -> ArcUpdate:
        with self._lock.write():
            self._ensure_open()
            if op == OP_ADD:
                update = self._detector.add_trading_arc(seller, buyer)
            else:
                update = self._detector.remove_trading_arc(seller, buyer)
            if update.applied:
                # Acknowledge only after the record is durable.
                self._wal.append(op, str(seller), str(buyer))
                self.metrics.count_arc_applied(op)
                self._ops_since_snapshot += 1
                if self._ops_since_snapshot >= self._config.snapshot_every:
                    self._compact_locked()
            return update

    def compact(self) -> Snapshot:
        """Force a snapshot + WAL truncation; returns the snapshot."""
        with self._lock.write():
            self._ensure_open()
            return self._compact_locked()

    def _compact_locked(self) -> Snapshot:
        snapshot = Snapshot(
            last_seq=self._wal.last_seq,
            arcs=tuple(
                (str(seller), str(buyer))
                for seller, buyer in self._detector.trading_arcs()
            ),
        )
        write_snapshot(self._config.snapshot_path, snapshot)
        self._wal.truncate()
        self._ops_since_snapshot = 0
        self.metrics.count_snapshot()
        return snapshot

    # ------------------------------------------------------------------
    # queries (shared)
    # ------------------------------------------------------------------
    def arc_status(self, seller: str, buyer: str) -> ArcStatus:
        with self._lock.read():
            return ArcStatus(
                str(seller),
                str(buyer),
                present=(seller, buyer) in self._detector,
                suspicious=self._detector.is_suspicious_arc(seller, buyer),
                groups=self._detector.groups_for_arc(seller, buyer),
            )

    def result(self) -> DetectionResult:
        """Aggregate result, equal to a batch run over the live arc set."""
        with self._lock.read():
            return self._detector.result()

    def investigate(self, company: str) -> CompanyInvestigation:
        with self._lock.read():
            return investigate_company(self._tpiin, self._detector.result(), company)

    def arc_count(self) -> int:
        with self._lock.read():
            return len(self._detector)

    def health(self) -> dict[str, object]:
        with self._lock.read():
            return {
                "status": "ok" if not self._closed else "closed",
                "arcs": len(self._detector),
                "wal_seq": self._wal.last_seq,
                "uptime_seconds": self.metrics.uptime_seconds,
                "recovered_records": self.recovered_records,
                "recovered_from_snapshot": self.recovered_from_snapshot,
                "healed_torn_tail": self.healed_torn_tail,
            }

    def metrics_payload(self) -> dict[str, object]:
        payload = self.metrics.to_dict()
        with self._lock.read():
            payload["path_cache"] = self._detector.path_cache_stats.to_dict()
            payload["arcs_tracked"] = len(self._detector)
            payload["wal_seq"] = self._wal.last_seq
        return payload

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and release durable state (idempotent)."""
        with self._lock.write():
            if not self._closed:
                self._wal.close()
                self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("the detection service is closed")

    def __enter__(self) -> "DetectionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
