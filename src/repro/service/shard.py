"""One worker of the component-sharded detection service.

A :class:`ShardWorker` owns the mutable state of a disjoint set of
weakly connected antecedent components: an
:class:`~repro.mining.incremental.IncrementalDetector` (sharing the
immutable antecedent indexes with its sibling shards), a per-shard
write-ahead log stamped with the *global* sequence the router assigns,
a per-shard snapshot, and a readers/writer lock.

Ingest runs through a **bounded queue + group commit** pipeline: HTTP
worker threads enqueue mutations (a full queue sheds with
:class:`~repro.errors.BackpressureError` instead of blocking — the 429
path must never deadlock), and one worker thread per shard drains the
queue in groups of up to ``group_commit_max``, applies each mutation
under the shard's write lock, appends the WAL records unflushed, and
issues **one** flush+fsync for the whole group before acknowledging any
of them.  On a box where the fsync dominates the mutation path this
amortization — plus N shards fsyncing concurrently — is where the
sharded service's throughput comes from.

Cross-shard work (component merges) enters the same queue as a
:class:`CoordinatorJob` so it executes at its FIFO position; the job's
callable acquires the shard locks it needs *in shard-index order*
itself, with the worker holding none — two concurrent merges can never
deadlock.  A mutation that reaches a worker whose shard no longer owns
the arc (a merge rehomed it) is forwarded to the owner's queue rather
than misapplied.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable, Sequence

from repro.errors import BackpressureError, MiningError, ServiceError
from repro.mining.detector import DetectionResult
from repro.mining.groups import SuspiciousGroup
from repro.mining.incremental import ArcUpdate, IncrementalDetector, PathCacheStats
from repro.obs.tracing import NULL_TRACER, Tracer, TracerLike
from repro.service.config import ServiceConfig
from repro.service.locks import ReadWriteLock
from repro.service.metrics import ServiceMetrics
from repro.service.snapshot import Snapshot, write_snapshot
from repro.service.wal import OP_ADD, OP_REMOVE, WriteAheadLog

__all__ = ["CoordinatorJob", "PendingMutation", "ShardWorker"]

#: How long an HTTP thread waits for its queued mutation's verdict
#: before declaring the shard worker dead.  Generous: a full group of
#: fsyncs plus a compaction finishes orders of magnitude faster.
_RESOLVE_TIMEOUT_SECONDS = 60.0


class PendingMutation:
    """One queued single-arc mutation awaiting its verdict."""

    __slots__ = ("op", "seller", "buyer", "_event", "_result", "_error")

    def __init__(self, op: str, seller: str, buyer: str) -> None:
        self.op = op
        self.seller = seller
        self.buyer = buyer
        self._event = threading.Event()
        self._result: ArcUpdate | None = None
        self._error: BaseException | None = None

    def resolve(self, result: ArcUpdate) -> None:
        self._result = result
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def wait(self, timeout: float = _RESOLVE_TIMEOUT_SECONDS) -> ArcUpdate:
        """Block until the worker resolves this mutation; re-raise errors."""
        if not self._event.wait(timeout):
            raise ServiceError(
                f"shard worker did not answer within {timeout:g}s "
                f"for {self.op} ({self.seller!r} -> {self.buyer!r})"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class CoordinatorJob:
    """A cross-shard operation queued at its FIFO position.

    The worker runs ``run`` while holding *no* locks; the callable
    (the router's merge coordinator) acquires every shard lock it needs
    in shard-index order, which makes concurrent merges deadlock-free.
    """

    __slots__ = ("run", "_event", "_result", "_error")

    def __init__(self, run: Callable[[], ArcUpdate]) -> None:
        self.run = run
        self._event = threading.Event()
        self._result: ArcUpdate | None = None
        self._error: BaseException | None = None

    def resolve(self, result: ArcUpdate) -> None:
        self._result = result
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def wait(self, timeout: float = _RESOLVE_TIMEOUT_SECONDS) -> ArcUpdate:
        if not self._event.wait(timeout):
            raise ServiceError("shard worker did not answer a coordinator job")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class ShardWorker:
    """Detector + WAL + snapshot + queue for one component partition."""

    #: Attributes that may only be touched under ``self._lock`` —
    #: reads need at least the read lock, mutations the write lock.
    #: Enforced flow-sensitively by reprolint R014.  The ingest queue is
    #: *not* in this set: it has its own condition variable so admission
    #: control never contends with the detector's critical sections.
    _lock_guarded = frozenset({"_detector", "_wal", "_ops_since_snapshot"})

    def __init__(
        self,
        index: int,
        detector: IncrementalDetector,
        wal: WriteAheadLog,
        config: ServiceConfig,
        metrics: ServiceMetrics,
        *,
        next_seq: Callable[[], int],
        owner_of: Callable[[tuple[str, str]], "int | None"],
        on_applied: Callable[[str, str, str], None],
        forward: Callable[[PendingMutation], None],
        on_trace: Callable[[tuple[int, ...], dict[str, object]], None] | None = None,
        start: bool = True,
    ) -> None:
        self.index = index
        self._detector = detector
        self._wal = wal
        self._config = config
        self._metrics = metrics
        self._next_seq = next_seq
        self._owner_of = owner_of
        self._on_applied = on_applied
        self._forward = forward
        self._on_trace = on_trace
        self._trace_mutations = config.recent_traces > 0 and on_trace is not None
        self._snapshot_path = config.shard_snapshot_path(index)
        self._lock = ReadWriteLock()
        self._ops_since_snapshot = 0
        self._queue: deque[PendingMutation | CoordinatorJob] = deque()
        self._q_cond = threading.Condition()
        self._stopping = False
        self._failed: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name=f"repro-shard-{index}", daemon=False
        )
        self._started = False
        if start:
            self._thread.start()
            self._started = True

    # ------------------------------------------------------------------
    # admission (HTTP threads)
    # ------------------------------------------------------------------
    def submit(self, op: str, seller: str, buyer: str) -> PendingMutation:
        """Enqueue one mutation; sheds with 429 when the queue is full."""
        entry = PendingMutation(op, seller, buyer)
        self.enqueue(entry)
        return entry

    def submit_job(self, run: Callable[[], ArcUpdate]) -> CoordinatorJob:
        """Enqueue a coordinator job (cross-shard merge) at FIFO position."""
        job = CoordinatorJob(run)
        self.enqueue(job)
        return job

    def enqueue(self, entry: PendingMutation | CoordinatorJob) -> None:
        limit = self._config.ingest_queue_limit
        with self._q_cond:
            if self._stopping or self._failed is not None:
                raise ServiceError(
                    f"shard {self.index} is not accepting mutations"
                )
            if len(self._queue) >= limit:
                self._metrics.count_shed(self.index)
                raise BackpressureError(
                    f"shard {self.index} ingest queue is full "
                    f"({len(self._queue)}/{limit})",
                    retry_after=self._config.retry_after_seconds,
                )
            self._queue.append(entry)
            depth = len(self._queue)
            self._q_cond.notify()
        self._metrics.set_queue_depth(self.index, depth, limit)

    def queue_depth(self) -> int:
        with self._q_cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    # worker loop (one thread per shard)
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            taken = self._take()
            if taken is None:
                return
            if isinstance(taken, CoordinatorJob):
                try:
                    taken.resolve(taken.run())
                except BaseException as exc:  # noqa: BLE001 - resolve waiter
                    taken.fail(exc)
                continue
            try:
                self._commit_group(taken)
            except BaseException as exc:  # noqa: BLE001 - disk fault &c.
                for pending in taken:
                    pending.fail(exc)
                self._fail_remaining(exc)
                return

    def _take(self) -> "list[PendingMutation] | CoordinatorJob | None":
        """Next unit of work: a group of mutations or one coordinator job.

        Groups stop at ``group_commit_max`` entries or at a coordinator
        job boundary (jobs must run at their exact FIFO position).
        Returns ``None`` once stopping *and* drained — shutdown commits
        every accepted mutation before the thread exits.
        """
        group_max = self._config.group_commit_max
        with self._q_cond:
            while not self._queue and not self._stopping:
                self._q_cond.wait()
            if not self._queue:
                return None
            head = self._queue[0]
            taken: list[PendingMutation] | CoordinatorJob
            if isinstance(head, CoordinatorJob):
                self._queue.popleft()
                taken = head
            else:
                group: list[PendingMutation] = []
                while (
                    self._queue
                    and len(group) < group_max
                    and isinstance(self._queue[0], PendingMutation)
                ):
                    entry = self._queue.popleft()
                    assert isinstance(entry, PendingMutation)
                    group.append(entry)
                taken = group
            depth = len(self._queue)
        self._metrics.set_queue_depth(
            self.index, depth, self._config.ingest_queue_limit
        )
        return taken

    def _commit_group(self, group: list[PendingMutation]) -> None:
        with self._lock.write():
            outcomes, traces = self._apply_group_locked(group)
        for payload in traces:
            if self._on_trace is not None:
                self._on_trace(payload[0], payload[1])
        for pending, outcome in zip(group, outcomes):
            if outcome is None:
                # The arc is owned by another shard (a merge rehomed it
                # after routing): forward instead of misapplying here.
                try:
                    self._forward(pending)
                except (BackpressureError, ServiceError) as exc:
                    pending.fail(exc)
            elif isinstance(outcome, BaseException):
                pending.fail(outcome)
            else:
                pending.resolve(outcome)

    def _apply_group_locked(
        self, group: Sequence[PendingMutation]
    ) -> tuple[
        "list[ArcUpdate | BaseException | None]",
        list[tuple[tuple[int, ...], dict[str, object]]],
    ]:
        """Apply a group under the write lock with one fsync at the end.

        ``None`` outcomes mark entries to forward to their owning shard.
        The WAL sync is the group-commit barrier: no caller observes a
        verdict before every record of the group is durable.
        """
        outcomes: list[ArcUpdate | BaseException | None] = []
        traces: list[tuple[tuple[int, ...], dict[str, object]]] = []
        appended = False
        for pending in group:
            key = (pending.seller, pending.buyer)
            owner = self._owner_of(key)
            if owner is not None and owner != self.index:
                outcomes.append(None)
                continue
            tracer: TracerLike = Tracer() if self._trace_mutations else NULL_TRACER
            try:
                with tracer.span("mutation") as span:
                    with tracer.span("apply"):
                        if pending.op == OP_ADD:
                            update = self._detector.add_trading_arc(
                                pending.seller, pending.buyer
                            )
                        else:
                            update = self._detector.remove_trading_arc(
                                pending.seller, pending.buyer
                            )
                    if update.applied:
                        with tracer.span("wal_append"):
                            self._wal.append(  # reprolint: disable=R014
                                pending.op,
                                pending.seller,
                                pending.buyer,
                                seq=self._next_seq(),
                                sync=False,
                            )
                        appended = True
                        self._ops_since_snapshot += 1
                        self._on_applied(pending.op, pending.seller, pending.buyer)
                        self._metrics.count_wal_append()
                        self._metrics.count_arc_applied(pending.op)
                    if tracer.enabled:
                        span.set(
                            op=pending.op,
                            seller=pending.seller,
                            buyer=pending.buyer,
                            shard=self.index,
                            applied=update.applied,
                            suspicious=update.suspicious,
                        )
                    record = span.record
            except MiningError as exc:
                outcomes.append(exc)
                continue
            outcomes.append(update)
            if record is not None:
                components = self._components_of_locked(
                    pending.seller, pending.buyer
                )
                traces.append(
                    (
                        components,
                        {
                            "subtpiins": list(components),
                            "op": pending.op,
                            "arc": [pending.seller, pending.buyer],
                            "shard": self.index,
                            "trace": record.to_dict(),
                        },
                    )
                )
        if appended:
            # Group-commit barrier: one flush+fsync covers every record
            # appended above; only now may any of them be acknowledged.
            self._wal.sync()  # reprolint: disable=R014
            if self._ops_since_snapshot >= self._config.snapshot_every:
                self._compact_locked()
        return outcomes, traces

    def _components_of_locked(self, seller: str, buyer: str) -> tuple[int, ...]:
        components = set()
        for node in (seller, buyer):
            try:
                components.add(self._detector.component_of(node))
            except MiningError:
                continue
        return tuple(sorted(components))

    def _fail_remaining(self, error: BaseException) -> None:
        """Poison the shard after an unrecoverable worker fault."""
        with self._q_cond:
            self._failed = error
            drained = list(self._queue)
            self._queue.clear()
            self._q_cond.notify_all()
        for entry in drained:
            entry.fail(ServiceError(f"shard {self.index} worker failed: {error}"))

    # ------------------------------------------------------------------
    # synchronous chunk application (the NDJSON batch path)
    # ------------------------------------------------------------------
    def apply_chunk(
        self, ops: Sequence[tuple[str, str, str]]
    ) -> "list[ArcUpdate | BaseException | None]":
        """Apply ``(op, seller, buyer)`` tuples with one fsync for all.

        The batch endpoint bypasses the admission queue (the request
        body *is* the batch) but shares the same group-commit critical
        section, so batch and queued traffic serialize per shard and
        interleave freely across shards.  ``None`` outcomes mark ops
        owned by another shard; the router re-dispatches those.
        """
        group = [PendingMutation(op, seller, buyer) for op, seller, buyer in ops]
        with self._lock.write():
            outcomes, traces = self._apply_group_locked(group)
        for payload in traces:
            if self._on_trace is not None:
                self._on_trace(payload[0], payload[1])
        return outcomes

    # ------------------------------------------------------------------
    # coordinator helpers (caller holds this shard's WRITE lock)
    # ------------------------------------------------------------------
    @property
    def lock(self) -> ReadWriteLock:
        """The shard's readers/writer lock, for the merge coordinator."""
        return self._lock

    def add_arc_locked(self, seller: str, buyer: str) -> ArcUpdate:
        """Apply + log one add; the caller syncs before acknowledging."""
        update = self._detector.add_trading_arc(seller, buyer)
        if update.applied:
            self._wal.append(  # reprolint: disable=R014
                OP_ADD, seller, buyer, seq=self._next_seq(), sync=False
            )
            self._ops_since_snapshot += 1
            self._on_applied(OP_ADD, seller, buyer)
            self._metrics.count_wal_append()
            self._metrics.count_arc_applied(OP_ADD)
        return update

    def remove_arc_locked(self, seller: str, buyer: str) -> ArcUpdate:
        update = self._detector.remove_trading_arc(seller, buyer)
        if update.applied:
            self._wal.append(  # reprolint: disable=R014
                OP_REMOVE, seller, buyer, seq=self._next_seq(), sync=False
            )
            self._ops_since_snapshot += 1
            self._on_applied(OP_REMOVE, seller, buyer)
            self._metrics.count_wal_append()
            self._metrics.count_arc_applied(OP_REMOVE)
        return update

    def sync_wal_locked(self) -> None:
        """Group-commit barrier for ``*_arc_locked`` appends."""
        self._wal.sync()  # reprolint: disable=R014

    def trading_arcs_locked(self) -> list[tuple[str, str]]:
        return [(str(s), str(b)) for s, b in self._detector.trading_arcs()]

    def maybe_compact_locked(self) -> None:
        if self._ops_since_snapshot >= self._config.snapshot_every:
            self._compact_locked()

    def _compact_locked(self) -> Snapshot:
        snapshot = Snapshot(
            last_seq=self._wal.last_seq,
            arcs=tuple(
                (str(seller), str(buyer))
                for seller, buyer in self._detector.trading_arcs()
            ),
        )
        # Snapshot write and WAL truncation must be atomic with respect
        # to mutations: a write between them would be lost on recovery.
        write_snapshot(self._snapshot_path, snapshot)  # reprolint: disable=R014
        self._wal.truncate()  # reprolint: disable=R014
        self._ops_since_snapshot = 0
        self._metrics.count_snapshot()
        return snapshot

    def compact(self) -> Snapshot:
        with self._lock.write():
            return self._compact_locked()

    # ------------------------------------------------------------------
    # queries (shared lock)
    # ------------------------------------------------------------------
    def result(self) -> DetectionResult:
        with self._lock.read():
            return self.result_rlocked()

    def result_rlocked(self) -> DetectionResult:
        return self._detector.result()

    def trading_arcs(self) -> list[tuple[str, str]]:
        with self._lock.read():
            return self.trading_arcs_rlocked()

    def trading_arcs_rlocked(self) -> list[tuple[str, str]]:
        return [(str(s), str(b)) for s, b in self._detector.trading_arcs()]

    def arc_view(
        self, seller: str, buyer: str
    ) -> tuple[bool, bool, list[SuspiciousGroup]]:
        """``(present, suspicious, groups)`` of one arc on this shard."""
        with self._lock.read():
            return (
                (seller, buyer) in self._detector,
                self._detector.is_suspicious_arc(seller, buyer),
                list(self._detector.groups_for_arc(seller, buyer)),
            )

    def arc_count(self) -> int:
        with self._lock.read():
            return self.arc_count_rlocked()

    def arc_count_rlocked(self) -> int:
        return len(self._detector)

    def path_cache_stats(self) -> PathCacheStats:
        with self._lock.read():
            return self.path_cache_stats_rlocked()

    def path_cache_stats_rlocked(self) -> PathCacheStats:
        return self._detector.path_cache_stats

    def wal_last_seq(self) -> int:
        with self._lock.read():
            return self.wal_last_seq_rlocked()

    def wal_last_seq_rlocked(self) -> int:
        return self._wal.last_seq

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker thread (tests construct with ``start=False``)."""
        if not self._started:
            self._thread.start()
            self._started = True

    def stop(self) -> None:
        """Stop accepting work and drain: every accepted entry commits."""
        with self._q_cond:
            self._stopping = True
            self._q_cond.notify_all()
        if self._started and self._thread.is_alive():
            self._thread.join()

    def close(self) -> None:
        """Drain the queue, then flush and release the WAL (idempotent)."""
        self.stop()
        with self._lock.write():
            wal = self._wal
        wal.close()
