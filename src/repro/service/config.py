"""Configuration for the long-lived detection daemon.

One frozen record holds everything the daemon needs to run: where to
listen, where the durable state lives (write-ahead log + snapshot), how
often to compact, and the streaming detector's cache bound.  The CLI
``serve`` subcommand builds one of these from flags; tests build them
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import ServiceError

__all__ = ["ServiceConfig"]

#: On-disk file names inside ``state_dir``.
_WAL_FILENAME = "wal.jsonl"
_SNAPSHOT_FILENAME = "snapshot.json"


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Operational parameters of one daemon instance.

    Parameters
    ----------
    state_dir:
        Directory holding the write-ahead log and the latest snapshot.
        Created on demand; point two daemons at the same directory and
        the second one inherits the first one's state.
    host / port:
        Listen address.  Port ``0`` asks the OS for an ephemeral port
        (useful in tests; the bound port is reported once the socket
        exists).
    snapshot_every:
        Compact (snapshot + WAL truncation) after this many applied arc
        updates.  Bounds both recovery time and WAL size.
    fsync:
        Fsync the WAL after every acknowledged update.  ``True`` is the
        durable default; ``False`` trades crash safety for throughput
        (data loss window = OS page-cache flush interval).
    max_cached_roots:
        Forwarded to :class:`~repro.mining.incremental.IncrementalDetector`:
        LRU bound on the per-root influence-path cache.
    collect_groups:
        With ``False`` the detector tracks counts only; ``/result``
        then reports counts without materialized groups.
    recent_traces:
        How many recent mutation span trees to keep for
        ``GET /v1/trace/{subtpiin}``; ``0`` disables mutation tracing.
    shards:
        How many component-sharded workers the sharded service runs.
        Each shard owns the state, WAL and incremental detector of a
        disjoint set of weakly connected antecedent components; ``1``
        keeps one worker but still uses the queued group-commit ingest
        pipeline.  Ignored by the single-lock :class:`DetectionService`.
    ingest_queue_limit:
        Bound on each shard's pending single-arc ingest queue.  A full
        queue sheds the request with HTTP ``429`` + ``Retry-After``
        instead of blocking — admission control never deadlocks.
    group_commit_max:
        Upper bound on how many queued mutations one shard worker
        applies per WAL fsync (group commit).  Larger groups amortize
        the fsync further at the cost of per-request latency.
    retry_after_seconds:
        The ``Retry-After`` hint (in seconds) sent with 429 responses.
    """

    state_dir: Path
    host: str = "127.0.0.1"
    port: int = 8420
    snapshot_every: int = 500
    fsync: bool = True
    max_cached_roots: int | None = 4096
    collect_groups: bool = True
    recent_traces: int = 64
    shards: int = 1
    ingest_queue_limit: int = 1024
    group_commit_max: int = 128
    retry_after_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.snapshot_every < 1:
            raise ServiceError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )
        if self.recent_traces < 0:
            raise ServiceError(
                f"recent_traces must be >= 0, got {self.recent_traces}"
            )
        if not 0 <= self.port <= 65535:
            raise ServiceError(f"port must be in [0, 65535], got {self.port}")
        if self.shards < 1:
            raise ServiceError(f"shards must be >= 1, got {self.shards}")
        if self.ingest_queue_limit < 1:
            raise ServiceError(
                f"ingest_queue_limit must be >= 1, got {self.ingest_queue_limit}"
            )
        if self.group_commit_max < 1:
            raise ServiceError(
                f"group_commit_max must be >= 1, got {self.group_commit_max}"
            )
        if self.retry_after_seconds <= 0:
            raise ServiceError(
                f"retry_after_seconds must be > 0, got {self.retry_after_seconds}"
            )
        object.__setattr__(self, "state_dir", Path(self.state_dir))

    @property
    def wal_path(self) -> Path:
        return self.state_dir / _WAL_FILENAME

    @property
    def snapshot_path(self) -> Path:
        return self.state_dir / _SNAPSHOT_FILENAME

    def shard_wal_path(self, shard: int) -> Path:
        """WAL of one shard worker (``wal-0003.jsonl`` for shard 3)."""
        return self.state_dir / f"wal-{shard:04d}.jsonl"

    def shard_snapshot_path(self, shard: int) -> Path:
        return self.state_dir / f"snapshot-{shard:04d}.json"

    def ensure_state_dir(self) -> Path:
        self.state_dir.mkdir(parents=True, exist_ok=True)
        return self.state_dir
