"""Stdlib-only JSON transport for :class:`DetectionService`.

One :class:`~http.server.ThreadingHTTPServer` per daemon.  The API is
versioned under ``/v1``; bare legacy paths answer with a ``308
Permanent Redirect`` to their ``/v1`` twin so old clients keep working
(``POST`` bodies survive a 308, unlike a 301/302).  Endpoints:

=========================================  =====================================
``POST /v1/arcs``                          apply ``{"op", "seller", "buyer"}``
``POST /v1/arcs:batch``                    NDJSON bulk ingest, per-line verdicts
``GET  /v1/arcs/{seller}/{buyer}``         status of one trading arc
``GET  /v1/result``                        full detection result (JSON)
``GET  /v1/result?detector={name}``        one portfolio detector's findings
``GET  /v1/detectors``                     registered detector listing
``GET  /v1/investigate/{company}``         drill-down briefing for a company
``GET  /v1/healthz``                       liveness + recovery summary
``GET  /v1/metrics``                       counters, latency histograms, caches
``GET  /v1/metrics?format=prometheus``     Prometheus text exposition
``GET  /v1/trace/{subtpiin}``              recent mutation span trees
=========================================  =====================================

Concurrency is bounded by the service's single-writer/multi-reader lock:
HTTP worker threads carry requests concurrently, but mutations serialize
at the state layer, never in the transport.  The server keeps
``daemon_threads = False`` so ``server_close()`` joins in-flight workers
— a SIGTERM drains cleanly instead of tearing mid-response.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, cast
from urllib.parse import parse_qs, unquote

from repro.errors import BackpressureError, MiningError, ServiceError
from repro.io.registry_io import parse_arc_ndjson
from repro.io.results_io import detection_to_dict, group_to_dict
from repro.mining.incremental import ArcUpdate
from repro.service.sharding import ShardedDetectionService
from repro.service.state import DetectionService
from repro.service.wal import OP_ADD, OP_REMOVE

__all__ = ["DetectionHTTPServer", "ServiceLike", "serve"]

#: Either service flavor; the transport only uses their shared surface.
ServiceLike = DetectionService | ShardedDetectionService

_logger = logging.getLogger("repro.service")

#: First path segments that existed before the API was versioned; bare
#: requests to these answer 308 with the ``/v1`` location.
_BARE_ROUTES = frozenset(
    {"arcs", "healthz", "investigate", "metrics", "result", "trace"}
)

#: ``(endpoint, status, json-payload, text-payload, redirect-location)`` —
#: exactly one of the last three is non-None.
_Routed = tuple[str, int, "dict[str, Any] | None", "str | None", "str | None"]


def _update_to_dict(update: ArcUpdate) -> dict[str, Any]:
    seller, buyer = update.arc
    return {
        "arc": [str(seller), str(buyer)],
        "applied": update.applied,
        "suspicious": update.suspicious,
        "group_count": update.group_count,
        "groups": [group_to_dict(g) for g in update.groups],
    }


class DetectionHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server that owns a :class:`DetectionService`."""

    # Track and join worker threads on server_close(): a drained
    # shutdown must finish in-flight responses, not abandon them.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: ServiceLike) -> None:
        super().__init__(address, _DetectionRequestHandler)
        self.service = service


class _DetectionRequestHandler(BaseHTTPRequestHandler):
    """Routes requests onto the owning server's service."""

    server_version = "repro-tpiin-service/1"
    protocol_version = "HTTP/1.1"
    # Headers and body go out in separate send() calls; without
    # TCP_NODELAY, Nagle + the peer's delayed ACK serializes them into
    # a ~40 ms stall per keep-alive request.
    disable_nagle_algorithm = True
    # Keep-alive idle timeout: with block_on_close, a handler thread
    # parked on an idle persistent connection would stall
    # server_close() forever.  Reaping after a quiet second keeps drain
    # bounded; clients transparently reconnect (stale-socket retry).
    timeout = 1.0

    @property
    def service(self) -> ServiceLike:
        return cast(DetectionHTTPServer, self.server).service

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        # Routes update the hint once the path is recognized, so error
        # responses still land on the right metrics series.
        self._endpoint_hint = "unknown"
        status = 500
        text: str | None = None
        location: str | None = None
        retry_after: float | None = None
        try:
            endpoint, status, payload, text, location = self._route(method)
        except MiningError as exc:
            endpoint = self._endpoint_hint
            status, payload = 400, {"error": str(exc)}
        except BackpressureError as exc:
            # Admission control shed the request; tell the client when
            # to retry.  Checked before ServiceError — it subclasses it.
            endpoint = self._endpoint_hint
            status, payload = 429, {"error": str(exc)}
            retry_after = exc.retry_after
        except ServiceError as exc:
            endpoint = self._endpoint_hint
            status, payload = 503, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            _logger.exception("unhandled error serving %s %s", method, self.path)
            endpoint = self._endpoint_hint
            status, payload = 500, {"error": f"internal error: {exc}"}
        if location is not None:
            self._send_redirect(status, location)
        elif text is not None:
            self._send_text(status, text)
        else:
            headers = (
                {"Retry-After": f"{retry_after:g}"} if retry_after is not None else None
            )
            self._send_json(
                status, payload if payload is not None else {}, extra_headers=headers
            )
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.service.metrics.observe_request(endpoint, status, elapsed_ms)

    def _route(self, method: str) -> _Routed:
        path, _, query = self.path.partition("?")
        parts = [unquote(p) for p in path.split("/") if p]
        if parts and parts[0] == "v1":
            return self._route_v1(method, parts[1:], query)
        if parts and parts[0] in _BARE_ROUTES:
            # Pre-versioning path: point the client at the /v1 twin.  A
            # 308 preserves the method and body, so POST /arcs survives.
            target = "/v1" + path + (f"?{query}" if query else "")
            return "redirect", 308, None, None, target
        return (
            "unknown",
            404,
            {"error": f"no {method} route for {self.path!r}"},
            None,
            None,
        )

    def _route_v1(self, method: str, parts: list[str], query: str) -> _Routed:
        if method == "POST":
            if parts == ["arcs"]:
                self._endpoint_hint = "post_arcs"
                status, payload = self._handle_post_arcs()
                return "post_arcs", status, payload, None, None
            if parts == ["arcs:batch"]:
                self._endpoint_hint = "post_arcs_batch"
                status, payload = self._handle_post_batch()
                return "post_arcs_batch", status, payload, None, None
            return (
                "unknown",
                404,
                {"error": f"no POST route for {self.path!r}"},
                None,
                None,
            )
        if parts == ["healthz"]:
            self._endpoint_hint = "healthz"
            return "healthz", 200, dict(self.service.health()), None, None
        if parts == ["metrics"]:
            self._endpoint_hint = "metrics"
            formats = parse_qs(query).get("format", [])
            if "prometheus" in formats:
                return (
                    "metrics",
                    200,
                    None,
                    self.service.metrics.render_prometheus(),
                    None,
                )
            return "metrics", 200, dict(self.service.metrics_payload()), None, None
        if parts == ["detectors"]:
            self._endpoint_hint = "detectors"
            return (
                "detectors",
                200,
                dict(self.service.detectors_payload()),
                None,
                None,
            )
        if parts == ["result"]:
            self._endpoint_hint = "result"
            names = parse_qs(query).get("detector", [])
            if names:
                # Portfolio detector requested: answer with its findings
                # payload instead of the legacy IAT group dump.
                return (
                    "result",
                    200,
                    dict(self.service.detector_findings(names[0])),
                    None,
                    None,
                )
            return "result", 200, detection_to_dict(self.service.result()), None, None
        if len(parts) == 3 and parts[0] == "arcs":
            self._endpoint_hint = "get_arc"
            status_view = self.service.arc_status(parts[1], parts[2])
            return (
                "get_arc",
                200,
                {
                    "arc": [status_view.seller, status_view.buyer],
                    "present": status_view.present,
                    "suspicious": status_view.suspicious,
                    "groups": [group_to_dict(g) for g in status_view.groups],
                },
                None,
                None,
            )
        if len(parts) == 2 and parts[0] == "investigate":
            self._endpoint_hint = "investigate"
            return (
                "investigate",
                200,
                dict(self.service.investigate(parts[1]).to_dict()),
                None,
                None,
            )
        if len(parts) == 2 and parts[0] == "trace":
            self._endpoint_hint = "trace"
            try:
                subtpiin = int(parts[1])
            except ValueError:
                raise MiningError(
                    f"subTPIIN index must be an integer, got {parts[1]!r}"
                ) from None
            return (
                "trace",
                200,
                dict(self.service.trace_payload(subtpiin)),
                None,
                None,
            )
        return "unknown", 404, {"error": f"no GET route for {self.path!r}"}, None, None

    def _handle_post_arcs(self) -> tuple[int, dict[str, Any]]:
        body = self._read_json_body()
        op = body.get("op", OP_ADD)
        seller = body.get("seller")
        buyer = body.get("buyer")
        if op not in (OP_ADD, OP_REMOVE):
            return 400, {"error": f"op must be {OP_ADD!r} or {OP_REMOVE!r}, got {op!r}"}
        if not isinstance(seller, str) or not isinstance(buyer, str):
            return 400, {"error": "seller and buyer must be strings"}
        if op == OP_ADD:
            update = self.service.add_arc(seller, buyer)
        else:
            update = self.service.remove_arc(seller, buyer)
        return 200, _update_to_dict(update)

    def _handle_post_batch(self) -> tuple[int, dict[str, Any]]:
        """NDJSON bulk ingest: one arc op per line, per-line verdicts.

        Malformed lines are rejected individually (the rest of the
        batch still applies); the response reports every line by its
        0-based index so clients can retry precisely.
        """
        started = time.perf_counter()
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise MiningError("request body is empty; expected NDJSON arc lines")
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MiningError(f"request body is not valid UTF-8: {exc}") from exc
        lines, rejects = parse_arc_ndjson(text)
        results = self.service.apply_batch(lines) if lines else []
        report = [
            {"line": reject.index, "error": reject.error} for reject in rejects
        ] + list(results)
        report.sort(key=lambda entry: cast(int, entry["line"]))
        accepted = sum(1 for entry in report if "error" not in entry)
        rejected = len(report) - accepted
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.service.metrics.observe_batch(accepted, rejected, elapsed_ms)
        return 200, {
            "lines": len(report),
            "accepted": accepted,
            "rejected": rejected,
            "results": report,
        }

    def _read_json_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise MiningError("request body is empty; expected a JSON object")
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise MiningError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise MiningError("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        *,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_redirect(self, status: int, location: str) -> None:
        self.send_response(status)
        self.send_header("Location", location)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def log_message(self, format: str, *args: object) -> None:
        _logger.debug("%s - %s", self.address_string(), format % args)


def serve(
    server: DetectionHTTPServer,
    *,
    install_signal_handlers: bool = True,
) -> None:
    """Run ``server`` until SIGTERM/SIGINT, then drain and close durably.

    ``server.shutdown()`` must not be called from the signal handler's
    (main) thread while ``serve_forever`` runs on it — that deadlocks —
    so the handler hands the call to a short-lived helper thread.
    """

    def _request_shutdown(signum: int, frame: object) -> None:
        _logger.info("signal %d received; draining", signum)
        threading.Thread(target=server.shutdown, name="shutdown").start()

    previous: dict[int, Any] = {}
    if install_signal_handlers:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _request_shutdown)
    try:
        server.serve_forever()
    finally:
        server.server_close()  # joins in-flight worker threads
        server.service.close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
