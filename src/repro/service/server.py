"""Stdlib-only JSON transport for :class:`DetectionService`.

One :class:`~http.server.ThreadingHTTPServer` per daemon.  Endpoints:

=========================================  =====================================
``POST /arcs``                             apply ``{"op", "seller", "buyer"}``
``GET  /arcs/{seller}/{buyer}``            status of one trading arc
``GET  /result``                           full detection result (JSON)
``GET  /investigate/{company}``            drill-down briefing for a company
``GET  /healthz``                          liveness + recovery summary
``GET  /metrics``                          counters, latency histograms, caches
=========================================  =====================================

Concurrency is bounded by the service's single-writer/multi-reader lock:
HTTP worker threads carry requests concurrently, but mutations serialize
at the state layer, never in the transport.  The server keeps
``daemon_threads = False`` so ``server_close()`` joins in-flight workers
— a SIGTERM drains cleanly instead of tearing mid-response.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, cast
from urllib.parse import unquote

from repro.errors import MiningError, ServiceError
from repro.io.results_io import detection_to_dict, group_to_dict
from repro.mining.incremental import ArcUpdate
from repro.service.state import DetectionService
from repro.service.wal import OP_ADD, OP_REMOVE

__all__ = ["DetectionHTTPServer", "DetectionRequestHandler", "serve"]

_logger = logging.getLogger("repro.service")


def _update_to_dict(update: ArcUpdate) -> dict[str, Any]:
    seller, buyer = update.arc
    return {
        "arc": [str(seller), str(buyer)],
        "applied": update.applied,
        "suspicious": update.suspicious,
        "group_count": update.group_count,
        "groups": [group_to_dict(g) for g in update.groups],
    }


class DetectionHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server that owns a :class:`DetectionService`."""

    # Track and join worker threads on server_close(): a drained
    # shutdown must finish in-flight responses, not abandon them.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: DetectionService) -> None:
        super().__init__(address, DetectionRequestHandler)
        self.service = service


class DetectionRequestHandler(BaseHTTPRequestHandler):
    """Routes requests onto the owning server's service."""

    server_version = "repro-tpiin-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> DetectionService:
        return cast(DetectionHTTPServer, self.server).service

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        endpoint = "unknown"
        status = 500
        try:
            endpoint, status, payload = self._route(method)
        except MiningError as exc:
            status, payload = 400, {"error": str(exc)}
        except ServiceError as exc:
            status, payload = 503, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            _logger.exception("unhandled error serving %s %s", method, self.path)
            status, payload = 500, {"error": f"internal error: {exc}"}
        self._send_json(status, payload)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.service.metrics.observe_request(endpoint, status, elapsed_ms)

    def _route(self, method: str) -> tuple[str, int, dict[str, Any]]:
        parts = [unquote(p) for p in self.path.split("?", 1)[0].split("/") if p]
        if method == "POST":
            if parts == ["arcs"]:
                status, payload = self._handle_post_arcs()
                return "post_arcs", status, payload
            return "unknown", 404, {"error": f"no POST route for {self.path!r}"}
        if parts == ["healthz"]:
            return "healthz", 200, dict(self.service.health())
        if parts == ["metrics"]:
            return "metrics", 200, dict(self.service.metrics_payload())
        if parts == ["result"]:
            return "result", 200, detection_to_dict(self.service.result())
        if len(parts) == 3 and parts[0] == "arcs":
            status_view = self.service.arc_status(parts[1], parts[2])
            return (
                "get_arc",
                200,
                {
                    "arc": [status_view.seller, status_view.buyer],
                    "present": status_view.present,
                    "suspicious": status_view.suspicious,
                    "groups": [group_to_dict(g) for g in status_view.groups],
                },
            )
        if len(parts) == 2 and parts[0] == "investigate":
            return "investigate", 200, dict(self.service.investigate(parts[1]).to_dict())
        return "unknown", 404, {"error": f"no GET route for {self.path!r}"}

    def _handle_post_arcs(self) -> tuple[int, dict[str, Any]]:
        body = self._read_json_body()
        op = body.get("op", OP_ADD)
        seller = body.get("seller")
        buyer = body.get("buyer")
        if op not in (OP_ADD, OP_REMOVE):
            return 400, {"error": f"op must be {OP_ADD!r} or {OP_REMOVE!r}, got {op!r}"}
        if not isinstance(seller, str) or not isinstance(buyer, str):
            return 400, {"error": "seller and buyer must be strings"}
        if op == OP_ADD:
            update = self.service.add_arc(seller, buyer)
        else:
            update = self.service.remove_arc(seller, buyer)
        return 200, _update_to_dict(update)

    def _read_json_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise MiningError("request body is empty; expected a JSON object")
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise MiningError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise MiningError("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        _logger.debug("%s - %s", self.address_string(), format % args)


def serve(
    server: DetectionHTTPServer,
    *,
    install_signal_handlers: bool = True,
) -> None:
    """Run ``server`` until SIGTERM/SIGINT, then drain and close durably.

    ``server.shutdown()`` must not be called from the signal handler's
    (main) thread while ``serve_forever`` runs on it — that deadlocks —
    so the handler hands the call to a short-lived helper thread.
    """

    def _request_shutdown(signum: int, frame: object) -> None:
        _logger.info("signal %d received; draining", signum)
        threading.Thread(target=server.shutdown, name="shutdown").start()

    previous: dict[int, Any] = {}
    if install_signal_handlers:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _request_shutdown)
    try:
        server.serve_forever()
    finally:
        server.server_close()  # joins in-flight worker threads
        server.service.close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
