"""Color vocabularies of the colored network-based model (CNBM).

The paper distinguishes two vocabularies:

* the **fused** TPIIN vocabulary of Definition 1 — two node colors
  (``Person``, ``Company``) and two arc colors (``IN`` influence, ``TR``
  trading); and
* the **raw** relationship vocabulary of the source networks — kinship
  and interlocking (interdependence links of *G1*), the four influence
  subclasses of *G2*, investment arcs of *GI*, and trading arcs of *G4*.

The fusion pipeline consumes the raw vocabulary and emits the fused one.
"""

from __future__ import annotations

import enum

__all__ = [
    "VColor",
    "EColor",
    "InterdependenceKind",
    "InfluenceKind",
    "RelationKind",
    "AffiliationKind",
]


class VColor(str, enum.Enum):
    """Node colors of the fused TPIIN (Definition 1's ``VColor``)."""

    PERSON = "Person"
    COMPANY = "Company"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class EColor(str, enum.Enum):
    """Arc colors of the fused TPIIN (Definition 1's ``EColor``).

    ``IN`` covers influence in the wide sense — direct person-to-company
    influence *and* company-to-company investment, which Section 4.1
    folds into the influence color when building G123.  ``TR`` is the
    trading relationship.  In the figures ``IN`` arcs are blue and ``TR``
    arcs are black, matching the 1/0 codes of the edge-list format.
    """

    INFLUENCE = "IN"
    TRADING = "TR"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class InterdependenceKind(str, enum.Enum):
    """The two relationships carried by *G1*'s unidirectional edges."""

    KINSHIP = "kinship"  # brown edges in the figures
    INTERLOCKING = "interlocking"  # yellow edges in the figures


class InfluenceKind(str, enum.Enum):
    """The four person-to-company influence subclasses of *G2*."""

    CEO_AND_D_OF = "is-an-CEO-and-D-of"
    CEO_OF = "is-CEO-of"
    CB_OF = "is-CB-of"
    D_OF = "is-a-D-of"


class RelationKind(str, enum.Enum):
    """Arc colors used by the homogeneous graphs before fusion."""

    INTERDEPENDENCE = "Interdependence"
    INFLUENCE = "Influence"
    INVESTMENT = "Investment"
    TRADING = "Trading"
    AFFILIATION = "Affiliation"


class AffiliationKind(str, enum.Enum):
    """Additional company-to-company covert relationships.

    The paper's conclusion flags "the introduction of more relationships
    into the heterogeneous information network" as future work; these
    are the kinds Chinese transfer-pricing practice most often cites
    beyond shareholding.  All of them give the source company influence
    over the target's dealings, so fusion folds them into the ``IN``
    color alongside investment.
    """

    GUARANTEE = "guarantee"  # loan guarantor -> guaranteed company
    FRANCHISE = "franchise"  # franchisor -> franchisee
    LICENSING = "licensing"  # IP licensor -> licensee
    EXCLUSIVE_SUPPLY = "exclusive-supply"  # sole supplier -> dependent buyer
