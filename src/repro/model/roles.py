"""Person-role algebra of Section 4.1.

A person may hold several positions: Chairman of the Board (CB), Chief
Executive Officer (CEO), Shareholder (S) and Director (D).  The paper
starts from the fifteen non-empty combinations, argues that in realistic
companies a shareholder relevant to decision making is himself a director
— so ``S`` may be absorbed into ``D`` — which collapses the fifteen
subclasses to seven, and finally notes that a **legal person** (LP) must
hold one of six of those seven combinations (a pure director cannot be an
LP under the Company Act rules the paper quotes).

This module implements that algebra with a :class:`Role` flag set:

>>> Role.from_positions("CEO", "S")
<Role.CEO|D: 6>
>>> Role.CEO in Role.from_positions("CEO", "S")
True
>>> len(REDUCED_ROLE_COMBINATIONS)
7
>>> len(LEGAL_PERSON_ROLES)
6
"""

from __future__ import annotations

import enum
import itertools

__all__ = [
    "Position",
    "Role",
    "FULL_ROLE_COMBINATIONS",
    "REDUCED_ROLE_COMBINATIONS",
    "LEGAL_PERSON_ROLES",
    "reduce_positions",
    "admissible_legal_person",
]


class Position(str, enum.Enum):
    """The four raw positions recorded in the source registries."""

    CB = "CB"
    CEO = "CEO"
    S = "S"  # shareholder; absorbed into D by the reduction
    D = "D"


class Role(enum.Flag):
    """Reduced role subclasses: combinations of CB, CEO and D."""

    CB = enum.auto()
    CEO = enum.auto()
    D = enum.auto()

    @classmethod
    def from_positions(cls, *positions: str | Position) -> "Role":
        """Map raw positions to a reduced role (the 15 -> 7 reduction).

        A shareholder (``S``) engaged in the monitoring and decision
        making of a company is treated as a director, per Section 4.1.
        """
        role = cls(0)
        for position in positions:
            position = Position(position)
            if position is Position.CB:
                role |= cls.CB
            elif position is Position.CEO:
                role |= cls.CEO
            else:  # S and D both reduce to D
                role |= cls.D
        if not role:
            raise ValueError("a person must hold at least one position")
        return role

    @property
    def is_director(self) -> bool:
        return bool(self & Role.D)

    @property
    def is_ceo(self) -> bool:
        return bool(self & Role.CEO)

    @property
    def is_chairman(self) -> bool:
        return bool(self & Role.CB)

    def label(self) -> str:
        """Stable human-readable label, e.g. ``"CEO+D"``."""
        parts = [
            name
            for name, member in [("CEO", Role.CEO), ("D", Role.D), ("CB", Role.CB)]
            if self & member
        ]
        return "+".join(parts)


def _nonempty_combinations(items: tuple[str, ...]) -> list[frozenset[str]]:
    result = []
    for size in range(1, len(items) + 1):
        for combo in itertools.combinations(items, size):
            result.append(frozenset(combo))
    return result


#: The fifteen non-empty subsets of {CB, CEO, S, D} (Section 4.1).
FULL_ROLE_COMBINATIONS: list[frozenset[str]] = _nonempty_combinations(
    ("CB", "CEO", "S", "D")
)

#: The seven reduced subclasses after absorbing S into D.
REDUCED_ROLE_COMBINATIONS: list[Role] = [
    Role.CEO | Role.D | Role.CB,
    Role.CEO | Role.D,
    Role.CEO | Role.CB,
    Role.D | Role.CB,
    Role.CB,
    Role.D,
    Role.CEO,
]

#: Role subclasses a legal person may hold.  A pure director cannot be
#: the LP: the Company Act assigns the LP role to a CB, an executive /
#: managing director (CEO and D) or a CEO.
LEGAL_PERSON_ROLES: frozenset[Role] = frozenset(
    r for r in REDUCED_ROLE_COMBINATIONS if r != Role.D
)


def reduce_positions(positions: frozenset[str]) -> Role:
    """Reduce one of the fifteen raw combinations to its reduced role."""
    return Role.from_positions(*positions)


def admissible_legal_person(role: Role) -> bool:
    """True when ``role`` may carry the legal-person designation."""
    return role in LEGAL_PERSON_ROLES
