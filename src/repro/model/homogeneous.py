"""The homogeneous source networks G1, G2, GI (G3) and G4.

Section 4.1 builds the TPIIN from four homogeneous relationship graphs
abstracted from the registries (CSRC, HRDPSC, PTAOs):

* **G1** — the *interdependence graph*: persons joined by unidirectional
  kinship or interlocking links.  When both relationships exist between a
  pair, only one link is kept.
* **G2** — the *influence graph*: a bipartite digraph from persons to
  companies with the four influence subclasses (is-an-CEO-and-D-of,
  is-CEO-of, is-CB-of, is-a-D-of).  Persons have indegree zero, companies
  outdegree zero, and every company links with at least one legal person.
* **GI** (called *G3* in the experiment figures) — the *investment
  graph*: company-to-company major-shareholding arcs; may contain cycles
  (mutual investment), which the fusion pipeline contracts.
* **G4** — the *trading graph*: company-to-company trading-relationship
  arcs.  One arc denotes the existence of a trading relationship, not an
  individual transaction.

Each wrapper owns a graph restricted to the right node/arc colors and
exposes a ``validate()`` implementing the Appendix-A structural
properties.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import ValidationError
from repro.graph.digraph import DiGraph, Node, UnGraph
from repro.model.colors import (
    AffiliationKind,
    InfluenceKind,
    InterdependenceKind,
    RelationKind,
    VColor,
)

__all__ = [
    "InterdependenceGraph",
    "InfluenceGraph",
    "InvestmentGraph",
    "TradingGraph",
    "AffiliationGraph",
]


class InterdependenceGraph:
    """*G1*: kinship / interlocking links between persons."""

    def __init__(self) -> None:
        self.graph = UnGraph()

    def add_person(self, person_id: Node) -> None:
        self.graph.add_node(person_id, VColor.PERSON)

    def add_link(self, u: Node, v: Node, kind: InterdependenceKind | str) -> bool:
        """Add one interdependence link.

        Per Section 4.1, if a pair already has a link of the other kind
        the new one is dropped — a single interdependence color remains.
        Returns ``True`` when the link was recorded.
        """
        kind = InterdependenceKind(kind)
        self.add_person(u)
        self.add_person(v)
        if self.graph.has_edge(u, v):
            return False
        return self.graph.add_edge(u, v, kind)

    def links(self) -> Iterator[tuple[Node, Node, InterdependenceKind]]:
        return self.graph.edges()

    @property
    def number_of_persons(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def number_of_links(self) -> int:
        return self.graph.number_of_edges()

    def validate(self) -> None:
        """G1 holds only Person nodes and at most one link per pair."""
        for node in self.graph.nodes():
            if self.graph.node_color(node) != VColor.PERSON:
                raise ValidationError(f"G1 node {node!r} is not a Person")
        seen: set[frozenset[Node]] = set()
        for u, v, _kind in self.graph.edges():
            key = frozenset((u, v))
            if key in seen:
                raise ValidationError(
                    f"G1 pair {{{u!r}, {v!r}}} carries more than one link"
                )
            seen.add(key)


class InfluenceGraph:
    """*G2*: the bipartite person -> company influence digraph.

    Legal-person designations are tracked on top of the influence arcs:
    an LP link is an influence arc flagged as the company's unique legal
    representative.
    """

    def __init__(self) -> None:
        self.graph = DiGraph()
        self._legal_person_of: dict[Node, Node] = {}  # company -> person

    def add_person(self, person_id: Node) -> None:
        self.graph.add_node(person_id, VColor.PERSON)

    def add_company(self, company_id: Node) -> None:
        self.graph.add_node(company_id, VColor.COMPANY)

    def add_influence(
        self,
        person_id: Node,
        company_id: Node,
        kind: InfluenceKind | str,
        *,
        legal_person: bool = False,
    ) -> bool:
        """Record that ``person_id`` influences ``company_id``.

        ``legal_person=True`` marks this person as the company's LP; a
        company accepts exactly one LP (Section 4.1: "a unique link").
        """
        kind = InfluenceKind(kind)
        self.add_person(person_id)
        self.add_company(company_id)
        if legal_person:
            current = self._legal_person_of.get(company_id)
            if current is not None and current != person_id:
                raise ValidationError(
                    f"company {company_id!r} already has legal person "
                    f"{current!r}; cannot also assign {person_id!r}"
                )
            self._legal_person_of[company_id] = person_id
        return self.graph.add_arc(person_id, company_id, kind)

    def legal_person(self, company_id: Node) -> Node | None:
        return self._legal_person_of.get(company_id)

    @property
    def legal_person_map(self) -> dict[Node, Node]:
        return dict(self._legal_person_of)

    def influences(self) -> Iterator[tuple[Node, Node, InfluenceKind]]:
        return self.graph.arcs()

    @property
    def number_of_persons(self) -> int:
        return self.graph.number_of_nodes(VColor.PERSON)

    @property
    def number_of_companies(self) -> int:
        return self.graph.number_of_nodes(VColor.COMPANY)

    @property
    def number_of_influences(self) -> int:
        return self.graph.number_of_arcs()

    def validate(self) -> None:
        """The Appendix-A bipartite properties of G2.

        Persons have indegree zero; companies have outdegree zero; arcs
        run person -> company only; every company has a legal person
        among its influencers.
        """
        for node in self.graph.nodes():
            color = self.graph.node_color(node)
            if color == VColor.PERSON:
                if self.graph.in_degree(node) != 0:
                    raise ValidationError(f"G2 person {node!r} has positive indegree")
            elif color == VColor.COMPANY:
                if self.graph.out_degree(node) != 0:
                    raise ValidationError(f"G2 company {node!r} has positive outdegree")
            else:
                raise ValidationError(f"G2 node {node!r} has no Person/Company color")
        for tail, head, _kind in self.graph.arcs():
            if self.graph.node_color(tail) != VColor.PERSON:
                raise ValidationError(f"G2 arc tail {tail!r} is not a Person")
            if self.graph.node_color(head) != VColor.COMPANY:
                raise ValidationError(f"G2 arc head {head!r} is not a Company")
        for company in self.graph.nodes(VColor.COMPANY):
            lp = self._legal_person_of.get(company)
            if lp is None:
                raise ValidationError(f"company {company!r} has no legal person")
            if not self.graph.has_arc(lp, company):
                raise ValidationError(
                    f"legal person {lp!r} of company {company!r} has no influence arc"
                )


class _CompanyArcGraph:
    """Shared base for the two company-to-company arc graphs."""

    _color: RelationKind

    def __init__(self) -> None:
        self.graph = DiGraph()

    def add_company(self, company_id: Node) -> None:
        self.graph.add_node(company_id, VColor.COMPANY)

    def add_arc(self, tail: Node, head: Node) -> bool:
        if tail == head:
            raise ValidationError(
                f"self-arc on {tail!r}: a company cannot {self._color.value.lower()} itself"
            )
        self.add_company(tail)
        self.add_company(head)
        return self.graph.add_arc(tail, head, self._color)

    def arcs(self) -> Iterator[tuple[Node, Node, RelationKind]]:
        return self.graph.arcs()

    @property
    def number_of_companies(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def number_of_arcs(self) -> int:
        return self.graph.number_of_arcs()

    def validate(self) -> None:
        for node in self.graph.nodes():
            if self.graph.node_color(node) != VColor.COMPANY:
                raise ValidationError(
                    f"{type(self).__name__} node {node!r} is not a Company"
                )
        for tail, head, color in self.graph.arcs():
            if color != self._color:
                raise ValidationError(
                    f"{type(self).__name__} arc ({tail!r}, {head!r}) has color {color!r}"
                )


class InvestmentGraph(_CompanyArcGraph):
    """*GI* / *G3*: major-shareholding arcs between companies.

    May legitimately contain directed cycles (mutual investment, Fig. A-3
    of the appendix); the fusion pipeline contracts them.
    """

    _color = RelationKind.INVESTMENT

    def add_investment(self, investor: Node, investee: Node) -> bool:
        return self.add_arc(investor, investee)


class TradingGraph(_CompanyArcGraph):
    """*G4*: trading-relationship arcs between companies."""

    _color = RelationKind.TRADING

    def add_trade(self, seller: Node, buyer: Node) -> bool:
        return self.add_arc(seller, buyer)


class AffiliationGraph:
    """Extra covert company-to-company links (future-work relationships).

    Arcs carry an :class:`~repro.model.colors.AffiliationKind` color —
    guarantee, franchise, licensing, exclusive supply.  The fusion
    pipeline folds them into the influence color next to investment, so
    a guarantor standing behind both parties of a trade becomes a
    common antecedent exactly like a shared investor would.
    """

    def __init__(self) -> None:
        self.graph = DiGraph()

    def add_company(self, company_id: Node) -> None:
        self.graph.add_node(company_id, VColor.COMPANY)

    def add_affiliation(
        self, source: Node, target: Node, kind: "AffiliationKind | str"
    ) -> bool:
        kind = AffiliationKind(kind)
        if source == target:
            raise ValidationError(
                f"self-affiliation on {source!r}: links join distinct companies"
            )
        self.add_company(source)
        self.add_company(target)
        return self.graph.add_arc(source, target, kind)

    def arcs(self) -> Iterator[tuple[Node, Node, object]]:
        return self.graph.arcs()

    @property
    def number_of_companies(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def number_of_arcs(self) -> int:
        return self.graph.number_of_arcs()

    def validate(self) -> None:
        for node in self.graph.nodes():
            if self.graph.node_color(node) != VColor.COMPANY:
                raise ValidationError(
                    f"AffiliationGraph node {node!r} is not a Company"
                )
        for tail, head, color in self.graph.arcs():
            if not isinstance(color, AffiliationKind):
                raise ValidationError(
                    f"affiliation arc ({tail!r}, {head!r}) has color {color!r}"
                )
