"""Colored network-based model (CNBM): entities, roles and source graphs."""

from repro.model.colors import (
    AffiliationKind,
    EColor,
    InfluenceKind,
    InterdependenceKind,
    RelationKind,
    VColor,
)
from repro.model.entities import Company, EntityRegistry, Person, Syndicate
from repro.model.homogeneous import (
    AffiliationGraph,
    InfluenceGraph,
    InterdependenceGraph,
    InvestmentGraph,
    TradingGraph,
)
from repro.model.roles import (
    FULL_ROLE_COMBINATIONS,
    LEGAL_PERSON_ROLES,
    REDUCED_ROLE_COMBINATIONS,
    Position,
    Role,
)

__all__ = [
    "AffiliationGraph",
    "AffiliationKind",
    "Company",
    "EColor",
    "EntityRegistry",
    "FULL_ROLE_COMBINATIONS",
    "InfluenceGraph",
    "InfluenceKind",
    "InterdependenceGraph",
    "InterdependenceKind",
    "InvestmentGraph",
    "LEGAL_PERSON_ROLES",
    "Person",
    "Position",
    "REDUCED_ROLE_COMBINATIONS",
    "RelationKind",
    "Role",
    "Syndicate",
    "TradingGraph",
    "VColor",
]
