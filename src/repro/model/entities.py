"""Entity records: persons, companies and syndicates.

The mining algorithms operate on bare node identifiers; these records
carry the registry-side information (roles, legal-person designations,
industry, region, member provenance of contracted syndicates) that the
data generators produce and the investigation / ITE layers consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import DuplicateNodeError
from repro.model.roles import Role, admissible_legal_person

__all__ = ["Person", "Company", "Syndicate", "EntityRegistry"]


@dataclass(frozen=True, slots=True)
class Person:
    """A natural person appearing in the source registries.

    ``legal_person_of`` lists the companies this person represents as
    legal person (LP); the LP role constraint of Section 4.1 is enforced
    at construction.
    """

    person_id: str
    name: str = ""
    role: Role = Role.D
    legal_person_of: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.legal_person_of and not admissible_legal_person(self.role):
            raise ValueError(
                f"person {self.person_id} holds role {self.role.label()} which "
                "may not carry a legal-person designation"
            )

    @property
    def is_legal_person(self) -> bool:
        return bool(self.legal_person_of)


@dataclass(frozen=True, slots=True)
class Company:
    """A legally and separately registered taxpayer.

    Every company must have exactly one legal person (Section 4.1: "a
    unique link with a LP"); the registry enforces the constraint when a
    company and its people are both registered.
    """

    company_id: str
    name: str = ""
    industry: str = "general"
    region: str = "domestic"
    scale: str = "small"  # "small" | "large": drives the role model in datagen
    # Declared registered capital (currency units); None when the source
    # registry did not report it.  The missing-trader detector weighs
    # trading throughput against it.
    registered_capital: float | None = None

    @property
    def is_cross_border(self) -> bool:
        return self.region != "domestic"


@dataclass(frozen=True, slots=True)
class Syndicate:
    """A contracted node: a set of persons or companies acting as one.

    Person syndicates arise from contracting interdependence links
    (kinship / interlocking, e.g. node *B* of Fig. 3(b)); company
    syndicates arise from contracting strongly connected investment
    subgraphs.  ``members`` records provenance so that mined groups can
    be expanded back to the original registry entities, and ``via`` the
    relationship kinds (kinship, interlocking, mutual investment) that
    caused the merge — the explanation layer cites them.
    """

    syndicate_id: str
    members: frozenset[str]
    kind: str  # "person" | "company"
    via: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if self.kind not in ("person", "company"):
            raise ValueError(f"unknown syndicate kind {self.kind!r}")
        if len(self.members) < 2:
            raise ValueError("a syndicate must merge at least two members")

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.members))


@dataclass
class EntityRegistry:
    """Lookup table from node identifiers to entity records.

    The registry survives fusion: syndicates are registered alongside
    the persons/companies they absorb, so any node id appearing in a
    TPIIN — original or contracted — resolves here.
    """

    persons: dict[str, Person] = field(default_factory=dict)
    companies: dict[str, Company] = field(default_factory=dict)
    syndicates: dict[str, Syndicate] = field(default_factory=dict)

    def add_person(self, person: Person) -> None:
        if person.person_id in self.persons:
            raise DuplicateNodeError(f"person {person.person_id} already registered")
        if person.person_id in self.companies or person.person_id in self.syndicates:
            raise DuplicateNodeError(
                f"identifier {person.person_id} already used by another entity"
            )
        self.persons[person.person_id] = person

    def add_company(self, company: Company) -> None:
        if company.company_id in self.companies:
            raise DuplicateNodeError(f"company {company.company_id} already registered")
        if company.company_id in self.persons or company.company_id in self.syndicates:
            raise DuplicateNodeError(
                f"identifier {company.company_id} already used by another entity"
            )
        self.companies[company.company_id] = company

    def add_syndicate(self, syndicate: Syndicate) -> None:
        if syndicate.syndicate_id in self.syndicates:
            raise DuplicateNodeError(
                f"syndicate {syndicate.syndicate_id} already registered"
            )
        self.syndicates[syndicate.syndicate_id] = syndicate

    def __contains__(self, node_id: str) -> bool:
        return (
            node_id in self.persons
            or node_id in self.companies
            or node_id in self.syndicates
        )

    def describe(self, node_id: str) -> str:
        """One-line description of any node id, for reports."""
        if node_id in self.persons:
            person = self.persons[node_id]
            lp = " LP" if person.is_legal_person else ""
            return f"Person {node_id} ({person.role.label()}{lp})"
        if node_id in self.companies:
            company = self.companies[node_id]
            return f"Company {node_id} ({company.industry}, {company.region})"
        if node_id in self.syndicates:
            syndicate = self.syndicates[node_id]
            members = ", ".join(sorted(syndicate.members))
            return f"Syndicate {node_id} [{syndicate.kind}: {members}]"
        return f"Unknown node {node_id}"

    def expand(self, node_id: str) -> frozenset[str]:
        """Original registry ids behind ``node_id`` (recursively).

        Syndicates of syndicates can arise when the contraction chain
        merges a syndicate with a further person; expansion flattens the
        chain down to primitive person/company ids.
        """
        if node_id not in self.syndicates:
            return frozenset((node_id,))
        out: set[str] = set()
        for member in self.syndicates[node_id].members:
            out |= self.expand(member)
        return frozenset(out)
